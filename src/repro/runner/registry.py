"""The scenario-family registry.

The paper evaluates FUBAR on one topology in two provisioning regimes; the
registry generalizes that into named, parameterized **scenario families**
that sweeps can enumerate.  A family couples a human-readable name with a
builder that turns ``(seed, **params)`` into a ready-to-run
:class:`~repro.experiments.scenarios.Scenario`.

Built-in families cover the paper's three Hurricane Electric regimes
(``he-provisioned`` / ``he-underprovisioned`` / ``he-prioritized``), the
Abilene and GÉANT research backbones, and the Waxman / random-regular
synthetic topology families — five distinct topology families in total.
New families can be registered at runtime with :func:`register_family`,
which is how downstream experiments plug their own workloads into the same
sweep/caching machinery.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.dynamics.scenarios import build_dynamic_scenario, build_failure_scenario
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import (
    DEFAULT_PRIORITY_FACTOR,
    RANDOM_TOPOLOGY_FAMILIES,
    SWEEP_TOPOLOGY_BUILDERS,
    Scenario,
    build_sweep_scenario,
    default_num_pops,
)
from repro.experiments.tiered import build_tiered_scenario
from repro.failures.schedule import LINK_FAILURE, NODE_FAILURE, undirected_link_pairs
from repro.provisioning.scenarios import (
    FRONTIER_MODE,
    SURVIVABLE_MODE,
    UPGRADES_MODE,
    build_provisioning_scenario,
)
from repro.runner.spec import CellSpec
from repro.topology.hurricane_electric import PROVISIONED_CAPACITY_BPS


@dataclass(frozen=True)
class ScenarioFamily:
    """A named, parameterized source of sweep scenarios.

    Parameters
    ----------
    name:
        Registry key, also used in cell labels and the CLI.
    description:
        One line shown by ``python -m repro.runner list``.
    builder:
        Callable ``(seed, **params) -> Scenario``.
    defaults:
        Parameters applied before any per-cell overrides; also documents
        which knobs the family exposes.
    sweepable:
        Names of the parameters that are meaningful to sweep (shown by the
        CLI so users know which axes exist).
    """

    name: str
    description: str
    builder: Callable[..., Scenario]
    defaults: Mapping[str, object] = field(default_factory=dict)
    sweepable: Tuple[str, ...] = ()

    def build(self, seed: int = 0, **overrides: object) -> Scenario:
        """Build this family's scenario for one cell."""
        params = {**self.defaults, **overrides}
        return self.builder(seed=seed, **params)

    def build_cell(self, spec: CellSpec) -> Scenario:
        """Build the scenario described by *spec* (which must name this family)."""
        if spec.family != self.name:
            raise ExperimentError(
                f"spec family {spec.family!r} does not match {self.name!r}"
            )
        return self.build(seed=spec.seed, **spec.params)


_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily, replace: bool = False) -> ScenarioFamily:
    """Add *family* to the registry (``replace=True`` to overwrite).

    The sweep engine forks workers only on Linux (macOS and Windows use
    spawned workers, which re-import this module and therefore see only the
    built-in families).  So on non-Linux platforms a family registered at
    runtime is only visible to parallel workers if the registration happens
    at import time of a module the workers also import — otherwise run such
    sweeps with ``jobs=1``.  On Linux, workers inherit the parent's registry
    and this caveat does not apply.
    """
    if family.name in _FAMILIES and not replace:
        raise ExperimentError(f"scenario family {family.name!r} is already registered")
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> ScenarioFamily:
    """Look up a registered family, with a helpful error for typos."""
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES)) or "(none)"
        raise ExperimentError(
            f"unknown scenario family {name!r}; registered families: {known}"
        ) from None


def list_families() -> List[ScenarioFamily]:
    """All registered families, sorted by name."""
    return [_FAMILIES[name] for name in sorted(_FAMILIES)]


def build_scenario(spec: CellSpec) -> Scenario:
    """Resolve *spec* against the registry and build its scenario."""
    return get_family(spec.family).build_cell(spec)


#: Topology families whose scenario size is driven by ``num_pops``.
NUM_POPS_TOPOLOGIES = frozenset({"hurricane-electric"}) | RANDOM_TOPOLOGY_FAMILIES


def _builder_defaults(builder: Callable[..., Scenario]) -> Dict[str, object]:
    """The introspectable keyword defaults of a family's builder function."""
    defaults: Dict[str, object] = {}
    try:
        signature = inspect.signature(builder)
    except (TypeError, ValueError):
        return defaults
    for name, parameter in signature.parameters.items():
        if name == "seed" or parameter.default is inspect.Parameter.empty:
            continue
        defaults[name] = parameter.default
    return defaults


def resolve_spec(spec: CellSpec) -> CellSpec:
    """Expand *spec* into the fully explicit cell it actually builds.

    Three implicit inputs are folded into the params so that the resolved
    spec's :meth:`~repro.runner.spec.CellSpec.config_hash` covers the cell's
    *complete* configuration:

    * the builder function's own keyword defaults — so an explicitly passed
      default value hashes like the implicit one, and editing a builder
      default can never be served stale cached results;
    * the family's registry defaults (e.g. the ``geant`` family's
      ``max_steps``), for the same reason;
    * the environment-selected scale (``FUBAR_FULL_SCALE`` →
      :func:`default_num_pops`), for topologies that consume ``num_pops`` —
      so a full-scale run never reuses reduced-scale records.  Fixed-size
      backbones (Abilene, GÉANT) are left untouched and stay portable
      across scale modes.

    Building the resolved spec yields the identical scenario; caches key on
    the resolved hash.
    """
    family = get_family(spec.family)
    params = {**_builder_defaults(family.builder), **family.defaults, **spec.params}
    if params.get("topology") in NUM_POPS_TOPOLOGIES and params.get("num_pops") is None:
        params["num_pops"] = default_num_pops()
    return CellSpec(spec.family, params, spec.seed)


# ------------------------------------------------------------ built-in families

_SWEEP_AXES = (
    "num_pops",
    "provisioning_ratio",
    "real_time_probability",
    "large_probability",
    "priority_factor",
    "target_demanded_utilization",
    "max_steps",
)


def _sweep_family(
    name: str, description: str, sweepable: Tuple[str, ...] = _SWEEP_AXES, **defaults: Any
) -> ScenarioFamily:
    return register_family(
        ScenarioFamily(
            name=name,
            description=description,
            builder=build_sweep_scenario,
            defaults=defaults,
            sweepable=sweepable,
        )
    )


_sweep_family(
    "he-provisioned",
    "Paper §3 provisioned regime: Hurricane Electric core, 100 Mbps links",
    topology="hurricane-electric",
    provisioning_ratio=1.0,
)
_sweep_family(
    "he-underprovisioned",
    "Paper §3 underprovisioned regime: Hurricane Electric core, 75 Mbps links",
    topology="hurricane-electric",
    provisioning_ratio=0.75,
)
_sweep_family(
    "he-prioritized",
    "Paper Figure 5: underprovisioned core with large flows weighted up",
    topology="hurricane-electric",
    provisioning_ratio=0.75,
    priority_factor=DEFAULT_PRIORITY_FACTOR,
)
_sweep_family(
    "abilene",
    "Abilene / Internet2 backbone (11 POPs) with the paper's traffic recipe",
    topology="abilene",
)
_sweep_family(
    "geant",
    "Simplified GEANT European backbone (16 POPs); larger, slower cells",
    topology="geant",
    # GEANT's per-step cost dominates a sweep; a deterministic step cap keeps
    # a cell in the seconds range while preserving cacheability.
    max_steps=15,
)
_sweep_family(
    "waxman",
    "Waxman random topologies; the seed draws a new instance per cell",
    topology="waxman",
)
_sweep_family(
    "random-core",
    "Random cores matching the HE core's mean degree; seed draws the instance",
    topology="random-core",
)


# --------------------------------------------------------- tiered families
#
# Internet-scale hierarchical topologies (repro.topology.hierarchical) with
# sampled paper traffic (repro.experiments.tiered).  The seed draws the
# topology instance, the pair sample and the per-aggregate classes, so one
# (family, params, seed) triple regenerates the identical cell.

_TIERED_AXES = (
    "num_nodes",
    "num_aggregates",
    "provisioning_ratio",
    "real_time_probability",
    "large_probability",
    "priority_factor",
    "target_demanded_utilization",
    "max_steps",
)


def _tiered_family(name: str, description: str, **defaults: Any) -> ScenarioFamily:
    return register_family(
        ScenarioFamily(
            name=name,
            description=description,
            builder=build_tiered_scenario,
            defaults=defaults,
            sweepable=_TIERED_AXES,
        )
    )


_tiered_family(
    "tiered-small",
    "Hierarchical ISP, ~15 nodes (3 backbone / 2 metros each): test scale",
    size="small",
)
_tiered_family(
    "tiered-metro",
    "Hierarchical ISP, ~95 nodes (5 backbone / 6 metros each): benchmark scale",
    size="metro",
    # ~95 nodes is already an order of magnitude past the paper's core; a
    # step cap keeps a cell in the seconds range while staying deterministic.
    max_steps=15,
)
_tiered_family(
    "tiered-continental",
    "Hierarchical ISP sized by num_nodes (default 1000): scaling stress test",
    size="continental",
    max_steps=10,
)


# -------------------------------------------------------- dynamic families
#
# Dynamic families run the closed SDN control loop (repro.dynamics) instead
# of a single-shot optimization: per cell, `num_epochs` cycles of
# measure -> re-optimize (warm-started by default) -> differential install
# over a time-varying traffic process layered on the same base matrix the
# static families use at that seed.

_DYNAMIC_AXES = (
    "num_pops",
    "provisioning_ratio",
    "num_epochs",
    "warm_start",
    "amplitude",
    "period_epochs",
    "magnitude",
    "step_std",
    "target_demanded_utilization",
    "max_steps",
)


def _dynamic_family(name: str, description: str, **defaults: Any) -> ScenarioFamily:
    return register_family(
        ScenarioFamily(
            name=name,
            description=description,
            builder=build_dynamic_scenario,
            defaults=defaults,
            sweepable=_DYNAMIC_AXES,
        )
    )


_dynamic_family(
    "he-diurnal",
    "Control loop: HE core under a sinusoidal day/night demand swing",
    topology="hurricane-electric",
    process="diurnal",
)
_dynamic_family(
    "he-flash-crowd",
    "Control loop: HE core with a transient flash crowd at the busiest POP",
    topology="hurricane-electric",
    process="flash-crowd",
)
_dynamic_family(
    "he-drift",
    "Control loop: HE core under per-aggregate random-walk demand drift",
    topology="hurricane-electric",
    process="random-walk",
    provisioning_ratio=0.75,
)


# -------------------------------------------------------- failure families
#
# Survivability families run the control loop through a timed link/node
# failure (and optional repair).  The failure target is addressed by a
# stable index — `failed_link` into the topology's undirected link pairs,
# `failed_node` into its node order — which makes "every single failure" an
# enumerable sweep axis: `expand_failure_specs` turns a spec without an
# explicit target into one cell per possible failure.

_FAILURE_AXES = (
    "num_pops",
    "provisioning_ratio",
    "failed_link",
    "failed_node",
    "failure_epoch",
    "repair_epoch",
    "num_epochs",
    "warm_start",
    "step_std",
    "target_demanded_utilization",
    "max_steps",
)


def _failure_family(name: str, description: str, **defaults: Any) -> ScenarioFamily:
    return register_family(
        ScenarioFamily(
            name=name,
            description=description,
            builder=build_failure_scenario,
            defaults=defaults,
            sweepable=_FAILURE_AXES,
        )
    )


_failure_family(
    "he-single-link-failure",
    "Survivability: HE core with one link cut mid-run (sweep failed_link to "
    "enumerate every fibre)",
    topology="hurricane-electric",
    failure_kind=LINK_FAILURE,
    process="static",
)
_failure_family(
    "he-node-failure",
    "Survivability: HE core with one POP down mid-run (strands its traffic)",
    topology="hurricane-electric",
    failure_kind=NODE_FAILURE,
    process="static",
)
_failure_family(
    "he-failure-under-drift",
    "Survivability: link cut while demand drifts (failure + dynamics composed)",
    topology="hurricane-electric",
    failure_kind=LINK_FAILURE,
    process="random-walk",
    provisioning_ratio=0.75,
)

# --------------------------------------------------- provisioning families
#
# Capacity-planning families answer "how much capacity, and where?" on top
# of the same calibrated scenarios the static families build: the minimal
# uniform capacity for a utility goal (warm-started bisection), the best
# sequence of targeted fibre upgrades (greedy marginal-utility search), and
# the capacity that sustains the goal under every single-link failure.

_PROVISIONING_AXES = (
    "num_pops",
    "provisioning_ratio",
    "target_utility",
    "min_scale",
    "max_scale",
    "relative_tolerance",
    "max_probes",
    "num_upgrades",
    "upgrade_factor",
    "candidates_per_round",
    "warm_start",
    "target_demanded_utilization",
    "max_steps",
)


def _provisioning_family(name: str, description: str, **defaults: Any) -> ScenarioFamily:
    return register_family(
        ScenarioFamily(
            name=name,
            description=description,
            builder=build_provisioning_scenario,
            defaults=defaults,
            sweepable=_PROVISIONING_AXES,
        )
    )


_provisioning_family(
    "he-capacity-plan",
    "Capacity planning: minimal uniform capacity for a utility goal "
    "(warm-started bisection frontier)",
    topology="hurricane-electric",
    mode=FRONTIER_MODE,
)
_provisioning_family(
    "he-upgrade-path",
    "Capacity planning: greedy marginal-utility fibre upgrades on an "
    "underprovisioned core",
    topology="hurricane-electric",
    mode=UPGRADES_MODE,
    provisioning_ratio=0.6,
)
_provisioning_family(
    "he-survivable-capacity",
    "Capacity planning: capacity sustaining the goal under every "
    "single-link failure",
    topology="hurricane-electric",
    mode=SURVIVABLE_MODE,
    target_utility=0.95,
    max_probes=6,
    # Surviving the worst cut can take well over twice the healthy minimal
    # capacity; the wider ceiling keeps the answer inside the search range.
    max_scale=3.0,
)


def is_failure_family(name: str) -> bool:
    """True when *name* is registered with the failure scenario builder."""
    try:
        return get_family(name).builder is build_failure_scenario
    except ExperimentError:
        return False


def _failure_target_count(spec: CellSpec) -> int:
    """How many distinct failures the cell's topology admits.

    Builds only the topology (never the traffic matrix or calibration), so
    enumerating a sweep stays cheap.  Uses the resolved spec so the
    environment scale and family defaults are honoured.
    """
    resolved = resolve_spec(spec)
    params = resolved.params
    topology = str(params.get("topology", "hurricane-electric"))
    num_pops = params.get("num_pops")
    ratio = float(params.get("provisioning_ratio", 1.0))
    network = SWEEP_TOPOLOGY_BUILDERS[topology](
        int(num_pops) if num_pops is not None else None,
        PROVISIONED_CAPACITY_BPS * ratio,
        resolved.seed,
    )
    if params.get("failure_kind", LINK_FAILURE) == NODE_FAILURE:
        return network.num_nodes
    return len(undirected_link_pairs(network))


def expand_failure_specs(specs: List[CellSpec]) -> List[CellSpec]:
    """Expand failure-family specs without an explicit target.

    A spec of a failure family that pins neither ``failed_link`` nor
    ``failed_node`` stands for the *whole* survivability sweep: it is
    replaced by one cell per enumerable failure of its topology (every
    undirected link pair, or every node).  Specs with an explicit target —
    and specs of every other family — pass through untouched.
    """
    expanded: List[CellSpec] = []
    for spec in specs:
        if not is_failure_family(spec.family) or (
            "failed_link" in spec.params or "failed_node" in spec.params
        ):
            expanded.append(spec)
            continue
        kind = str(
            {**get_family(spec.family).defaults, **spec.params}.get(
                "failure_kind", LINK_FAILURE
            )
        )
        axis = "failed_node" if kind == NODE_FAILURE else "failed_link"
        expanded.extend(
            CellSpec(spec.family, {**spec.params, axis: index}, seed=spec.seed)
            for index in range(_failure_target_count(spec))
        )
    return expanded


# ------------------------------------------------------------------- presets


def default_sweep_specs(seeds: Tuple[int, ...] = (0,)) -> List[CellSpec]:
    """The default sweep grid: nine cells across five topology families.

    The cell sizes are chosen so the whole grid completes in seconds on a
    laptop while still covering both provisioning regimes, a prioritized
    cell, two real research backbones, both random families and one dynamic
    control-loop cell.  Pass more seeds to replicate the grid per seed (the
    Figure 7 treatment, applied to every family).
    """
    grid = [
        CellSpec("he-provisioned", {"num_pops": 6}),
        CellSpec("he-underprovisioned", {"num_pops": 6}),
        CellSpec("he-prioritized", {"num_pops": 6}),
        CellSpec("abilene", {}),
        CellSpec("abilene", {"provisioning_ratio": 0.75}),
        CellSpec("geant", {}),
        CellSpec("waxman", {"num_pops": 8, "provisioning_ratio": 0.75}),
        CellSpec("random-core", {"num_pops": 8}),
        CellSpec("he-drift", {"num_pops": 6, "num_epochs": 4}),
        CellSpec(
            "he-single-link-failure",
            {"num_pops": 6, "num_epochs": 3, "failed_link": 0},
        ),
        CellSpec("he-capacity-plan", {"num_pops": 6, "max_probes": 6}),
    ]
    return [
        CellSpec(cell.family, cell.params, seed=seed) for seed in seeds for cell in grid
    ]


def smoke_sweep_specs() -> List[CellSpec]:
    """A single tiny cell used by CI and quick sanity checks."""
    return [CellSpec("he-provisioned", {"num_pops": 5})]


def failure_sweep_specs(seeds: Tuple[int, ...] = (0,)) -> List[CellSpec]:
    """The survivability grid: every single-link and single-node failure.

    The specs intentionally pin no failure target —
    :func:`expand_failure_specs` (applied by the sweep CLI) blows each one up
    into one cell per enumerable failure of the topology, so the preset
    scales with the resolved scale (``FUBAR_FULL_SCALE=1`` enumerates the
    full 31-POP core's fibres).
    """
    grid = [
        CellSpec("he-single-link-failure", {"num_epochs": 3}),
        CellSpec("he-node-failure", {"num_epochs": 3}),
    ]
    return [
        CellSpec(cell.family, cell.params, seed=seed) for seed in seeds for cell in grid
    ]


def provisioning_sweep_specs(seeds: Tuple[int, ...] = (0,)) -> List[CellSpec]:
    """The capacity-planning grid: frontier, upgrade path and survivability.

    One cell per provisioning question on the reduced Hurricane Electric
    core — the minimal-capacity frontier, the greedy fibre-upgrade path on
    the underprovisioned variant, and the survivable capacity — sized so the
    whole grid stays in the seconds range.
    """
    grid = [
        CellSpec("he-capacity-plan", {"num_pops": 6}),
        CellSpec("he-upgrade-path", {"num_pops": 6}),
        CellSpec("he-survivable-capacity", {"num_pops": 6}),
    ]
    return [
        CellSpec(cell.family, cell.params, seed=seed) for seed in seeds for cell in grid
    ]


def scale_sweep_specs(seeds: Tuple[int, ...] = (0,)) -> List[CellSpec]:
    """The scaling grid: tiered topologies from test scale to 1000 nodes.

    Three cells per seed — the small tiered instance at full fidelity, the
    ~95-node metro instance, and a 1000-node continental instance with a
    tight step cap.  The continental cell is the acceptance check that an
    Internet-scale topology completes end to end through the runner; its
    wall-clock is dominated by the batched candidate scorer's stacked
    solves (see benchmarks/bench_scale.py).
    """
    grid = [
        CellSpec("tiered-small", {}),
        CellSpec("tiered-metro", {}),
        CellSpec("tiered-continental", {"num_nodes": 1000, "max_steps": 5}),
    ]
    return [
        CellSpec(cell.family, cell.params, seed=seed) for seed in seeds for cell in grid
    ]


#: Named sweep presets selectable from the CLI.
SWEEP_PRESETS: Dict[str, Callable[[], List[CellSpec]]] = {
    "default": default_sweep_specs,
    "smoke": smoke_sweep_specs,
    "failures": failure_sweep_specs,
    "provisioning": provisioning_sweep_specs,
    "scale": scale_sweep_specs,
}
