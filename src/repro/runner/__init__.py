"""Parallel scenario-sweep runner.

This package is the layer that turns the single-scenario reproduction into
an evaluation machine: a registry of named scenario families
(:mod:`repro.runner.registry`), a parallel sweep engine with deterministic
per-cell seeds (:mod:`repro.runner.engine`), an on-disk result cache keyed
by config hash (:mod:`repro.runner.cache`) and aggregated FUBAR-vs-baseline
comparison reports (:mod:`repro.runner.report`).  The CLI in
:mod:`repro.runner.cli` exposes it all as ``python -m repro.runner``.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV_VAR,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)
from repro.runner.engine import (
    BASELINE_SCHEMES,
    CellOutcome,
    SweepResult,
    SweepStats,
    default_jobs,
    evaluate_cell,
    iter_sweep,
    run_sweep,
)
from repro.runner.registry import (
    SWEEP_PRESETS,
    ScenarioFamily,
    build_scenario,
    default_sweep_specs,
    expand_failure_specs,
    failure_sweep_specs,
    get_family,
    is_failure_family,
    list_families,
    register_family,
    resolve_spec,
    scale_sweep_specs,
    smoke_sweep_specs,
)
from repro.runner.report import (
    aggregate_summary,
    append_jsonl_record,
    comparison_rows,
    format_markdown_report,
    format_sweep_report,
    load_jsonl_records,
)
from repro.runner.spec import CellSpec, canonical_json, parse_param_overrides
from repro.runner.worker import (
    WorkerCaches,
    active_worker_caches,
    clear_worker_caches,
    install_worker_caches,
)

__all__ = [
    "BASELINE_SCHEMES",
    "CACHE_DIR_ENV_VAR",
    "CellOutcome",
    "CellSpec",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SWEEP_PRESETS",
    "ScenarioFamily",
    "SweepResult",
    "SweepStats",
    "WorkerCaches",
    "active_worker_caches",
    "aggregate_summary",
    "append_jsonl_record",
    "build_scenario",
    "canonical_json",
    "clear_worker_caches",
    "comparison_rows",
    "default_cache_dir",
    "default_jobs",
    "default_sweep_specs",
    "evaluate_cell",
    "expand_failure_specs",
    "failure_sweep_specs",
    "format_markdown_report",
    "format_sweep_report",
    "get_family",
    "install_worker_caches",
    "is_failure_family",
    "iter_sweep",
    "list_families",
    "load_jsonl_records",
    "parse_param_overrides",
    "register_family",
    "resolve_spec",
    "run_sweep",
    "scale_sweep_specs",
    "smoke_sweep_specs",
]
