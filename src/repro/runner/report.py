"""Aggregated comparison reports over sweep records.

These helpers consume the JSON records produced by
:mod:`repro.runner.engine` (directly, or re-read from the cache) and render
the cross-scenario comparison the paper never had: FUBAR against the
shortest-path / ECMP / min-max-LP baselines and the upper bound, per cell
and aggregated over the whole sweep.  Console output uses the fixed-width
tables from :mod:`repro.metrics.reporting`; written reports use the markdown
variant so they render on any forge.
"""

from __future__ import annotations

import json
import logging
import math
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

_log = logging.getLogger(__name__)

from repro.dynamics.loop import format_epoch_table
from repro.metrics.reporting import format_markdown_table, format_table
from repro.runner.engine import BASELINE_SCHEMES

#: Scheme columns of the comparison table, in display order (derived from
#: the engine's runner map so adding a baseline updates the reports too).
REPORT_SCHEMES = ("fubar", *BASELINE_SCHEMES)


def append_jsonl_record(path: os.PathLike, record: Mapping[str, object]) -> None:
    """Append *record* to the JSONL stream at *path* as one line.

    The line is serialized first and written with a single flushed call, so
    a crash mid-sweep can truncate at most the final line — which
    :func:`load_jsonl_records` then skips.  Parent directories are created
    on demand.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()


def load_jsonl_records(path: os.PathLike) -> List[Dict[str, object]]:
    """Read a sweep's JSONL stream back into a record list.

    Tolerates the partial streams an interrupted sweep leaves behind:
    corrupt (truncated) lines are skipped, and when a cell appears more than
    once — e.g. a resumed sweep re-emitting a cache hit, or a retried error
    followed by a success — the *last* occurrence wins, keyed by
    ``config_hash``.  First-appearance order is preserved.
    """
    by_hash: Dict[str, Dict[str, object]] = {}
    skipped_lines = 0
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    skipped_lines += 1
                    _log.warning(
                        "skipping corrupt JSONL line %d of %s: %s",
                        line_number,
                        path,
                        error,
                    )
                    continue
                if not isinstance(record, dict):
                    skipped_lines += 1
                    _log.warning(
                        "skipping non-record JSONL line %d of %s", line_number, path
                    )
                    continue
                key = str(record.get("config_hash", id(record)))
                # dict preserves first-insertion order; assignment replaces
                # the value without reordering.
                by_hash[key] = record
    except FileNotFoundError:
        return []
    if skipped_lines:
        _log.warning(
            "%s: skipped %d unreadable line(s); a truncated tail is expected "
            "after an interrupted sweep",
            path,
            skipped_lines,
        )
    return list(by_hash.values())


def _scheme_utility(record: Mapping[str, object], scheme: str) -> float:
    schemes = record.get("schemes", {})
    entry = schemes.get(scheme, {}) if isinstance(schemes, Mapping) else {}
    value = entry.get("utility") if isinstance(entry, Mapping) else None
    return float(value) if value is not None else math.nan


def comparison_rows(records: Iterable[Mapping[str, object]]) -> List[List[str]]:
    """One row per successful cell: utilities per scheme plus references."""
    rows: List[List[str]] = []
    for record in records:
        if "error" in record:
            # "ERROR" sits in the first scheme column; dashes fill the rest.
            padding = ["-"] * (len(COMPARISON_HEADERS) - 2)
            rows.append([str(record.get("label", "?")), "ERROR", *padding])
            continue
        utilities = [f"{_scheme_utility(record, scheme):.4f}" for scheme in REPORT_SCHEMES]
        bound = record.get("upper_bound_utility")
        improvement = record.get("improvement_over_shortest_path")
        rows.append(
            [
                str(record.get("label", "?")),
                *utilities,
                f"{float(bound):.4f}" if bound is not None else "-",
                f"{float(improvement):+.1%}" if improvement is not None else "n/a",
            ]
        )
    return rows


COMPARISON_HEADERS = ("cell", *REPORT_SCHEMES, "upper-bound", "vs sp")


def _survivability_line(summary: Mapping[str, object]) -> Optional[str]:
    """The recovery-accounting line of a failure cell (None for demand-only)."""
    if summary.get("failures") is None and "first_failure_epoch" not in summary:
        return None
    recovery = summary.get("recovery_epochs")
    rendered_recovery = (
        f"{int(recovery)} epoch(s)" if recovery is not None else "not recovered"
    )
    stranded = float(summary.get("total_stranded_demand_bps", 0.0) or 0.0)
    return (
        f"failures: {summary.get('failures', '?')} — "
        f"recovery {rendered_recovery}, "
        f"stranded demand {stranded / 1e6:.2f} Mbps·epochs "
        f"(peak {summary.get('max_stranded_aggregates', 0)} aggregates), "
        f"{summary.get('rules_invalidated', 0)} rules invalidated"
    )


def dynamics_sections(records: Iterable[Mapping[str, object]]) -> List[str]:
    """Per-epoch control-loop sections for every dynamic cell record."""
    sections: List[str] = []
    for record in records:
        dynamics = record.get("dynamics")
        if not isinstance(dynamics, Mapping):
            continue
        summary = dynamics.get("summary", {})
        header = (
            f"control loop: {record.get('label', '?')} — "
            f"{summary.get('process', '?')}, "
            f"{'warm' if summary.get('warm_start') else 'cold'} start, "
            f"mean delivered utility "
            f"{float(summary.get('mean_delivered_utility', 0.0)):.4f}, "
            f"{float(summary.get('mean_model_evaluations_per_cycle', 0.0)):.1f} "
            f"evals/cycle, total churn {summary.get('total_rule_churn', 0)}"
        )
        survivability = _survivability_line(summary)
        if survivability:
            header += "\n" + survivability
        sections.append(header + "\n" + format_epoch_table(dynamics.get("epochs", ())))
    return sections


def _frontier_section(label: str, frontier: Mapping[str, object]) -> str:
    """Render one capacity-vs-utility frontier as header + table."""
    minimal = frontier.get("minimal_capacity_bps")
    header = (
        f"capacity frontier: {label} — target utility "
        f">= {float(frontier.get('target_utility', 0.0)):g}, minimal capacity "
        + (f"{float(minimal) / 1e6:.1f} Mbps" if minimal is not None else "not found")
        + f", {frontier.get('total_model_evaluations', 0)} model evaluations "
        + ("(warm-started probes)" if frontier.get("warm_start") else "(cold probes)")
        + ("" if frontier.get("monotone", True) else " [NON-MONOTONE]")
    )
    rows = [
        (
            f"{float(point['capacity_bps']) / 1e6:.1f}",
            f"{float(point['utility']):.4f}",
            "yes" if point.get("feasible") else "no",
            str(point.get("model_evaluations", "?")),
            ("warm" if point.get("warm_started") else "cold")
            + ("+repair" if point.get("repaired") else ""),
        )
        for point in frontier.get("points", ())
    ]
    table = format_table(
        ("capacity (Mbps)", "utility", "feasible", "evals", "probe"), rows
    )
    return header + "\n" + table


def _upgrades_section(label: str, plan: Mapping[str, object]) -> str:
    """Render one greedy upgrade plan as header + per-step table."""
    header = (
        f"upgrade path: {label} — utility {float(plan.get('base_utility', 0.0)):.4f} "
        f"-> {float(plan.get('final_utility', 0.0)):.4f} after "
        f"{len(plan.get('steps', ()))} upgrade(s) "
        f"(+{float(plan.get('total_added_bps', 0.0)) / 1e6:.0f} Mbps), "
        f"stopped: {plan.get('termination_reason', '?')}"
    )
    rows = [
        (
            str(index + 1),
            "–".join(step.get("link", ("?", "?"))),
            f"{float(step['old_capacity_bps']) / 1e6:.0f}"
            f"->{float(step['new_capacity_bps']) / 1e6:.0f}",
            f"{float(step['utility_gain']):+.4f}",
            f"{float(step['marginal_utility_per_gbps']):.4f}",
            str(step.get("candidates_probed", "?")),
        )
        for index, step in enumerate(plan.get("steps", ()))
    ]
    table = format_table(
        ("step", "fibre", "capacity (Mbps)", "Δutility", "utility/Gbps", "probed"),
        rows,
    )
    return header + "\n" + table


def _survivable_section(label: str, survivable: Mapping[str, object]) -> str:
    """Render one survivable-capacity search as header + probe table."""
    minimal = survivable.get("survivable_capacity_bps")
    skipped = int(survivable.get("skipped_disconnecting", 0) or 0)
    header = (
        f"survivable capacity: {label} — target utility "
        f">= {float(survivable.get('target_utility', 0.0)):g} under every "
        f"single-link failure ({survivable.get('num_failures', '?')} fibres"
        + (f", {skipped} disconnecting skipped" if skipped else "")
        + "), "
        + (f"{float(minimal) / 1e6:.1f} Mbps" if minimal is not None else "not found")
        + f", {survivable.get('total_model_evaluations', 0)} model evaluations"
    )
    rows = []
    for probe in survivable.get("probes", ()):
        worst = probe.get("worst_failure_utility")
        fibre = probe.get("worst_failure")
        rows.append(
            (
                f"{float(probe['capacity_bps']) / 1e6:.1f}",
                f"{float(probe['healthy_utility']):.4f}",
                f"{float(worst):.4f}" if worst is not None else "-",
                "–".join(fibre) if fibre else "-",
                f"{probe.get('failures_evaluated', 0)}",
                "yes" if probe.get("feasible") else "no",
            )
        )
    table = format_table(
        ("capacity (Mbps)", "healthy", "worst-failure", "worst fibre", "cuts", "ok"),
        rows,
    )
    return header + "\n" + table


def provisioning_sections(records: Iterable[Mapping[str, object]]) -> List[str]:
    """Capacity-planning sections for every provisioning cell record."""
    sections: List[str] = []
    for record in records:
        provisioning = record.get("provisioning")
        if not isinstance(provisioning, Mapping):
            continue
        label = str(record.get("label", "?"))
        frontier = provisioning.get("frontier")
        if isinstance(frontier, Mapping):
            sections.append(_frontier_section(label, frontier))
        upgrades = provisioning.get("upgrades")
        if isinstance(upgrades, Mapping):
            sections.append(_upgrades_section(label, upgrades))
        survivable = provisioning.get("survivable")
        if isinstance(survivable, Mapping):
            sections.append(_survivable_section(label, survivable))
    return sections


def aggregate_summary(records: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Sweep-level aggregates over the successful cells."""
    ok = [record for record in records if "error" not in record]
    summary: Dict[str, object] = {
        "cells": len(list(records)),
        "succeeded": len(ok),
        "failed": len(list(records)) - len(ok),
    }
    if not ok:
        return summary
    improvements = [
        float(r["improvement_over_shortest_path"])
        for r in ok
        if r.get("improvement_over_shortest_path") is not None
    ]
    gaps = []
    best_count = 0
    congestion_cleared = 0
    for record in ok:
        fubar = _scheme_utility(record, "fubar")
        others = [_scheme_utility(record, s) for s in REPORT_SCHEMES[1:]]
        # Dynamic (control-loop) cells sit out the cross-scheme aggregates:
        # their final plan is scored on the final measured matrix — and, for
        # failure cells, over only the routable aggregates of a degraded
        # topology — while the baselines route the full base matrix on the
        # healthy network, so "best scheme" and "gap to bound" would compare
        # different populations.  Their headline numbers live in the
        # control-loop sections instead.
        if "dynamics" not in record:
            if all(fubar >= other - 1e-9 for other in others if not math.isnan(other)):
                best_count += 1
            bound = record.get("upper_bound_utility")
            if bound is not None and float(bound) > 0:
                gaps.append(1.0 - fubar / float(bound))
        schemes = record.get("schemes", {})
        fubar_entry = schemes.get("fubar", {}) if isinstance(schemes, Mapping) else {}
        if isinstance(fubar_entry, Mapping) and fubar_entry.get("congested_links") == 0:
            congestion_cleared += 1
    summary.update(
        {
            "mean_improvement_over_shortest_path": (
                sum(improvements) / len(improvements) if improvements else None
            ),
            "mean_gap_to_upper_bound": sum(gaps) / len(gaps) if gaps else None,
            "cells_compared": sum(1 for r in ok if "dynamics" not in r),
            "cells_where_fubar_is_best": best_count,
            "cells_with_no_congestion": congestion_cleared,
            "families": sorted(
                {str(r.get("spec", {}).get("family", "?")) for r in ok}
            ),
            "topologies": sorted(
                {str(r.get("scenario", {}).get("topology", r.get("scenario", {}).get("network", "?"))) for r in ok}
            ),
        }
    )
    return summary


def format_sweep_report(
    records: Sequence[Mapping[str, object]],
    stats: Optional[Mapping[str, object]] = None,
) -> str:
    """Render the full console report: comparison table + aggregate lines."""
    lines = [format_table(COMPARISON_HEADERS, comparison_rows(records))]
    summary = aggregate_summary(records)
    lines.append("")
    lines.append(
        f"cells: {summary['cells']}  succeeded: {summary['succeeded']}  "
        f"failed: {summary['failed']}"
    )
    if summary.get("succeeded"):
        mean_improvement = summary["mean_improvement_over_shortest_path"]
        rendered_improvement = (
            f"{mean_improvement:+.1%}" if mean_improvement is not None else "n/a"
        )
        lines.append(
            f"mean improvement over shortest path: {rendered_improvement}  |  "
            f"FUBAR best scheme in {summary['cells_where_fubar_is_best']}"
            f"/{summary['cells_compared']} single-shot cells  |  "
            f"congestion fully cleared in {summary['cells_with_no_congestion']}"
            f"/{summary['succeeded']} cells"
        )
        gap = summary.get("mean_gap_to_upper_bound")
        if gap is not None:
            lines.append(f"mean gap to upper bound: {gap:.1%}")
    if stats:
        duplicates = stats.get("duplicates", 0)
        lines.append(
            f"run: {stats.get('cache_hits', 0)} cache hits, "
            f"{stats.get('computed', 0)} computed, "
            f"{stats.get('failures', 0)} failures"
            + (f", {duplicates} duplicates" if duplicates else "")
            + f" in {float(stats.get('wall_clock_s', 0.0)):.1f}s"
        )
    for section in dynamics_sections(records):
        lines.append("")
        lines.append(section)
    for section in provisioning_sections(records):
        lines.append("")
        lines.append(section)
    for record in records:
        if "error" in record:
            lines.append(f"\n{record.get('label', '?')} failed: {record['error']}")
    return "\n".join(lines)


def format_markdown_report(
    records: Sequence[Mapping[str, object]],
    stats: Optional[Mapping[str, object]] = None,
    title: str = "FUBAR scenario sweep",
) -> str:
    """Render the sweep as a standalone markdown document."""
    summary = aggregate_summary(records)
    lines = [f"# {title}", ""]
    lines.append(format_markdown_table(COMPARISON_HEADERS, comparison_rows(records)))
    lines.append("")
    lines.append("## Summary")
    lines.append("")
    for key, value in summary.items():
        if value is None:
            value = "n/a"
        elif isinstance(value, float):
            value = f"{value:.4f}"
        lines.append(f"- **{key}**: {value}")
    if stats:
        lines.append(
            f"- **run**: {stats.get('cache_hits', 0)} cache hits, "
            f"{stats.get('computed', 0)} computed, "
            f"{stats.get('failures', 0)} failures, "
            f"{float(stats.get('wall_clock_s', 0.0)):.1f}s wall clock"
        )
    sections = dynamics_sections(records)
    if sections:
        lines.append("")
        lines.append("## Control-loop cells")
        for section in sections:
            lines.append("")
            lines.append("```")
            lines.append(section)
            lines.append("```")
    capacity_sections = provisioning_sections(records)
    if capacity_sections:
        lines.append("")
        lines.append("## Capacity-planning cells")
        for section in capacity_sections:
            lines.append("")
            lines.append("```")
            lines.append(section)
            lines.append("```")
    lines.append("")
    return "\n".join(lines)
