"""On-disk result cache for sweep cells.

Every evaluated cell is stored as one JSON file named after the cell's
config hash (see :meth:`repro.runner.spec.CellSpec.config_hash`).  Because
the hash covers the complete canonical spec — family, parameters, seed, and
a schema version — a repeated sweep with the same configuration is a pure
cache read, and any change to the configuration transparently misses.

The cache is deliberately simple: a directory of self-describing JSON files
that can be inspected, diffed, copied between machines, or deleted
wholesale.  Writes go through a temp-file rename so a crashed worker never
leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional

_log = logging.getLogger(__name__)

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "FUBAR_CACHE_DIR"

#: Directory used when neither the CLI flag nor the env var names one.
DEFAULT_CACHE_DIR = ".fubar-cache"

#: Subdirectory holding cached *error* records.  Error records live apart
#: from successes so the top-level globs (``records``/``hashes``/``len``)
#: keep meaning "completed cells", and so a deterministic failing cell can
#: be served (or explicitly retried) without ever shadowing a success.
ERROR_SUBDIR = "errors"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment or the default."""
    return Path(os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or DEFAULT_CACHE_DIR)


class ResultCache:
    """A directory of cached cell results keyed by config hash."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def _path_for(self, config_hash: str) -> Path:
        return self.directory / f"{config_hash}.json"

    def contains(self, config_hash: str) -> bool:
        """True when a result for *config_hash* is cached."""
        return self._path_for(config_hash).is_file()

    def load(self, config_hash: str) -> Optional[Dict[str, object]]:
        """The cached record for *config_hash*, or None on a miss.

        A corrupt entry (e.g. an interrupted manual edit) is treated as a
        miss rather than an error so a sweep can transparently recompute it.
        """
        path = self._path_for(config_hash)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            _log.warning("treating unreadable cache entry %s as a miss: %s", path, error)
            return None

    def store(self, config_hash: str, record: Dict[str, object]) -> Path:
        """Atomically persist *record* under *config_hash* and return its path."""
        return self._write(self._path_for(config_hash), record)

    def _write(self, path: Path, record: Dict[str, object]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp suffix must not end in ".json": the record globs would
        # otherwise pick up an orphan left by a killed process as an entry.
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            # repro: allow[EXC001] — best-effort temp-file cleanup; the original error is re-raised below
            except OSError:
                pass
            raise
        return path

    # -------------------------------------------------------- error records

    def _error_path_for(self, config_hash: str) -> Path:
        return self.directory / ERROR_SUBDIR / f"{config_hash}.json"

    def store_error(self, config_hash: str, record: Dict[str, object]) -> Path:
        """Persist an error record under the distinct error key.

        Cached errors make deterministic failures explicit: a rerun serves
        the stored error instead of silently recomputing, unless the caller
        asks for a retry (``retry_errors`` in the sweep engine / CLI).
        """
        return self._write(self._error_path_for(config_hash), record)

    def load_error(self, config_hash: str) -> Optional[Dict[str, object]]:
        """The cached error record for *config_hash*, or None."""
        path = self._error_path_for(config_hash)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            _log.warning("treating unreadable error entry %s as a miss: %s", path, error)
            return None

    def discard_error(self, config_hash: str) -> bool:
        """Drop the cached error for *config_hash* (e.g. after a retry succeeds)."""
        path = self._error_path_for(config_hash)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as error:
            _log.warning("could not discard error entry %s: %s", path, error)
            return False

    def error_hashes(self) -> List[str]:
        """Config hashes of every cached error record."""
        error_dir = self.directory / ERROR_SUBDIR
        if not error_dir.is_dir():
            return []
        return sorted(path.stem for path in error_dir.glob("*.json"))

    def records(self) -> Iterator[Dict[str, object]]:
        """Iterate over every readable cached record (order: by filename)."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                _log.warning("skipping unreadable cache entry %s: %s", path, error)
                continue

    def hashes(self) -> List[str]:
        """Config hashes of every cached entry."""
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry (successes and errors); returns the count."""
        removed = 0
        paths: List[Path] = []
        if self.directory.is_dir():
            paths.extend(self.directory.glob("*.json"))
            paths.extend((self.directory / ERROR_SUBDIR).glob("*.json"))
        for path in paths:
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue  # raced with a concurrent clear/prune: already gone
            except OSError as error:
                _log.warning("could not delete cache entry %s: %s", path, error)
                continue
        return removed

    def prune(self, current_schema: int) -> int:
        """Drop entries whose schema differs from *current_schema*; return the count.

        A ``SPEC_SCHEMA_VERSION`` bump changes every config hash, so stale
        entries are never *served* — but their files accumulate forever.
        Pruning removes success and error records carrying an old (or
        missing) schema tag, plus unreadable/corrupt files.
        """
        removed = 0
        paths: List[Path] = []
        if self.directory.is_dir():
            paths.extend(self.directory.glob("*.json"))
            paths.extend((self.directory / ERROR_SUBDIR).glob("*.json"))
        for path in paths:
            try:
                with path.open("r", encoding="utf-8") as handle:
                    record = json.load(handle)
                stale = not isinstance(record, dict) or record.get("schema") != current_schema
            except (OSError, json.JSONDecodeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    continue  # raced with a concurrent clear/prune: already gone
                except OSError as error:
                    _log.warning("could not prune cache entry %s: %s", path, error)
                    continue
        return removed

    def __len__(self) -> int:
        return len(self.hashes())

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, entries={len(self)})"
