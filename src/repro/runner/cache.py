"""On-disk result cache for sweep cells.

Every evaluated cell is stored as one JSON file named after the cell's
config hash (see :meth:`repro.runner.spec.CellSpec.config_hash`).  Because
the hash covers the complete canonical spec — family, parameters, seed, and
a schema version — a repeated sweep with the same configuration is a pure
cache read, and any change to the configuration transparently misses.

The cache is deliberately simple: a directory of self-describing JSON files
that can be inspected, diffed, copied between machines, or deleted
wholesale.  Writes go through a temp-file rename so a crashed worker never
leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "FUBAR_CACHE_DIR"

#: Directory used when neither the CLI flag nor the env var names one.
DEFAULT_CACHE_DIR = ".fubar-cache"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment or the default."""
    return Path(os.environ.get(CACHE_DIR_ENV_VAR, "").strip() or DEFAULT_CACHE_DIR)


class ResultCache:
    """A directory of cached cell results keyed by config hash."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def _path_for(self, config_hash: str) -> Path:
        return self.directory / f"{config_hash}.json"

    def contains(self, config_hash: str) -> bool:
        """True when a result for *config_hash* is cached."""
        return self._path_for(config_hash).is_file()

    def load(self, config_hash: str) -> Optional[Dict[str, object]]:
        """The cached record for *config_hash*, or None on a miss.

        A corrupt entry (e.g. an interrupted manual edit) is treated as a
        miss rather than an error so a sweep can transparently recompute it.
        """
        path = self._path_for(config_hash)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None

    def store(self, config_hash: str, record: Dict[str, object]) -> Path:
        """Atomically persist *record* under *config_hash* and return its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path_for(config_hash)
        # The temp suffix must not end in ".json": the record globs would
        # otherwise pick up an orphan left by a killed process as an entry.
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".tmp-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def records(self) -> Iterator[Dict[str, object]]:
        """Iterate over every readable cached record (order: by filename)."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue

    def hashes(self) -> List[str]:
        """Config hashes of every cached entry."""
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json") if self.directory.is_dir() else ():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        return len(self.hashes())

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, entries={len(self)})"
