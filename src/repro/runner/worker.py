"""Process-local warm caches for sweep workers.

Cells that share a topology redo each other's work: every cell rebuilds the
same shortest-path answers and recompiles the same traffic-model rows from
scratch.  The sweep engine (:mod:`repro.runner.engine`) groups pending cells
by :meth:`~repro.runner.spec.CellSpec.cache_affinity_key` and dispatches each
group to one worker process; inside that worker a single
:class:`WorkerCaches` — installed by the pool initializer, or around the
serial loop — holds a :class:`~repro.paths.cache.PathSetCache` and a
:class:`~repro.trafficmodel.compiled.CompiledModelCache` that consecutive
same-topology cells hit.

Sharing is correctness-gated, not assumed: both caches key on the topology
*content* signature (capacity overrides and degraded failure views miss),
the compiled engine validates every cached row against the requesting
bundle's utility function, and the test suite requires a shared-cache
sweep's records to be byte-identical to an isolated-worker run.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.paths.cache import PathSetCache
from repro.paths.generator import PathGenerator
from repro.topology.graph import Network
from repro.trafficmodel.compiled import CompiledModelCache, CompiledTrafficModel
from repro.trafficmodel.waterfill import TrafficModel, TrafficModelConfig

__all__ = [
    "WorkerCaches",
    "active_worker_caches",
    "clear_worker_caches",
    "install_worker_caches",
]


class WorkerCaches:
    """One worker process's warm state: path sets plus compiled-model engines.

    The path cache serves the unrestricted default policy only — cells that
    optimize under a custom path policy build their own generators, exactly
    as before.
    """

    __slots__ = ("path_cache", "model_cache")

    def __init__(
        self,
        path_cache: Optional[PathSetCache] = None,
        model_cache: Optional[CompiledModelCache] = None,
    ) -> None:
        self.path_cache = path_cache or PathSetCache()
        self.model_cache = model_cache or CompiledModelCache()

    def generator_for(self, network: Network) -> PathGenerator:
        """The warm path generator for *network* (default policy)."""
        return self.path_cache.generator_for(network)

    def engine_for(
        self, network: Network, config: Optional[TrafficModelConfig] = None
    ) -> CompiledTrafficModel:
        """The warm compiled engine for *network* under *config*."""
        return self.model_cache.engine_for(network, config)

    def model_for(
        self, network: Network, config: Optional[TrafficModelConfig] = None
    ) -> TrafficModel:
        """A :class:`TrafficModel` wrapping the warm engine for *network*."""
        return TrafficModel.from_engine(self.engine_for(network, config))

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of both caches (for bench reporting)."""
        return {
            "paths": self.path_cache.stats(),
            "models": self.model_cache.stats(),
        }

    def clear(self) -> None:
        """Drop all warm state (generators and engines)."""
        self.path_cache.clear()
        self.model_cache.clear()


#: The caches of the current process, or None when sharing is disabled.
_ACTIVE: Optional[WorkerCaches] = None


def install_worker_caches(caches: Optional[WorkerCaches] = None) -> WorkerCaches:
    """Install (or replace) this process's active caches and return them.

    Called by the sweep pool initializer in each worker process, and by the
    serial path around its evaluation loop.
    """
    global _ACTIVE
    _ACTIVE = caches or WorkerCaches()  # repro: allow[MP101] — WorkerCaches is the one sanctioned per-worker mutable slot, installed once by the pool initializer
    return _ACTIVE


def active_worker_caches() -> Optional[WorkerCaches]:
    """The caches installed in this process, or None outside a shared sweep."""
    return _ACTIVE


def clear_worker_caches() -> None:
    """Uninstall this process's caches (evaluations revert to cold builds)."""
    global _ACTIVE
    _ACTIVE = None
