"""The fleet-scale parallel sweep engine.

:func:`evaluate_cell` runs one sweep cell end to end — build the scenario,
run FUBAR, run every baseline (shortest path, ECMP, min-max LP), compute the
upper bound — and returns a :class:`CellOutcome` holding both the rich
in-process objects (for benchmarks that want the optimizer trace) and a
JSON-serializable record (for the cache and the reports).

:func:`iter_sweep` streams a sweep: it resolves cache hits first, dispatches
the remaining cells to worker processes grouped by
:meth:`~repro.runner.spec.CellSpec.cache_affinity_key` — same-topology cells
land on the same worker, whose process-local :class:`~repro.runner.worker.
WorkerCaches` keep warm path generators and compiled-model rows between
cells — and yields ``(event, record)`` pairs the moment each cell finishes.
Every finished cell is written back to the cache on arrival, so an
interrupted sweep keeps all completed cells and a rerun resumes from them.
:func:`run_sweep` consumes the stream and returns the familiar spec-ordered
:class:`SweepResult`.

Cells are fully described by their picklable specs and derive all randomness
from the spec seed, so parallel execution is exactly as reproducible as a
serial run; cache sharing keys on topology *content* and is correctness-
gated by the test suite (shared-cache records byte-identical to isolated
runs).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.common import BaselineResult
from repro.baselines.ecmp import ecmp_routing
from repro.baselines.minmax_lp import minmax_lp_routing
from repro.baselines.shortest_path import shortest_path_routing
from repro.baselines.upper_bound import upper_bound_utility
from repro.core.controller import Fubar, FubarPlan
from repro.dynamics.loop import ControlLoopResult
from repro.dynamics.scenarios import is_dynamic, run_scenario_loop
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import Scenario
from repro.metrics.reporting import relative_improvement
from repro.provisioning.scenarios import (
    ProvisioningOutcome,
    is_provisioning,
    run_scenario_provisioning,
)
from repro.runner.cache import ResultCache
from repro.runner.registry import build_scenario, resolve_spec
from repro.runner.spec import SPEC_SCHEMA_VERSION, CellSpec
from repro.runner.worker import (
    WorkerCaches,
    active_worker_caches,
    clear_worker_caches,
    install_worker_caches,
)

#: Records and spec hashing share one schema version: an incompatible record
#: change must bump ``SPEC_SCHEMA_VERSION`` in :mod:`repro.runner.spec`,
#: which also invalidates every cached entry.
RECORD_SCHEMA_VERSION = SPEC_SCHEMA_VERSION

_BASELINE_RUNNERS: Dict[str, Callable] = {
    "shortest-path": shortest_path_routing,
    "ecmp": ecmp_routing,
    "minmax-lp": minmax_lp_routing,
}

#: The baseline schemes every cell is compared against, in report order.
BASELINE_SCHEMES = tuple(_BASELINE_RUNNERS)


@dataclass
class CellOutcome:
    """The full in-process result of evaluating one cell."""

    spec: CellSpec
    scenario: Scenario
    plan: FubarPlan
    baselines: Dict[str, BaselineResult]
    upper_bound: float
    wall_clock_s: float
    #: Per-epoch control-loop trajectory; None for static (single-shot) cells.
    dynamics: Optional[ControlLoopResult] = None
    #: Capacity-planning answer (frontier / upgrade plan / survivable
    #: capacity); None for cells without provisioning metadata.
    provisioning: Optional[ProvisioningOutcome] = None

    @property
    def final_utility(self) -> float:
        """FUBAR's final (unweighted) network utility."""
        return self.plan.network_utility

    @property
    def shortest_path_utility(self) -> float:
        """The shortest-path lower-bound reference."""
        return self.baselines["shortest-path"].network_utility

    def improvement_over_shortest_path(self) -> Optional[float]:
        """Relative utility improvement of FUBAR over shortest-path routing,
        or ``None`` when the shortest-path utility is non-positive.

        Also ``None`` for dynamic cells: the loop's final plan is scored on
        the final *measured* matrix while the baseline routes the base
        matrix, so the ratio would compare different demand; reports render
        it "n/a" and show the per-epoch trajectory instead."""
        if self.dynamics is not None:
            return None
        return relative_improvement(self.final_utility, self.shortest_path_utility)

    def to_record(self) -> Dict[str, object]:
        """The JSON-serializable record cached and consumed by reports."""
        weights = self.scenario.fubar_config.priority_weights
        model = self.plan.result.model_result
        schemes: Dict[str, Dict[str, object]] = {
            "fubar": {
                "utility": model.network_utility(),
                "weighted_utility": model.network_utility(weights),
                "total_utilization": model.total_utilization(),
                "demanded_utilization": model.demanded_utilization(),
                "congested_links": len(model.congested_links),
                "steps": self.plan.result.num_steps,
                "wall_clock_s": self.plan.result.wall_clock_s,
                "termination": self.plan.result.termination_reason,
            }
        }
        for name, baseline in self.baselines.items():
            schemes[name] = {
                "utility": baseline.network_utility,
                "weighted_utility": baseline.weighted_utility(weights),
                "total_utilization": baseline.model_result.total_utilization(),
                "demanded_utilization": baseline.model_result.demanded_utilization(),
                "congested_links": len(baseline.model_result.congested_links),
            }
        record = {
            "schema": RECORD_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "config_hash": self.spec.config_hash(),
            "label": self.spec.label(),
            "scenario": dict(self.scenario.summary()),
            "schemes": schemes,
            "upper_bound_utility": self.upper_bound,
            "improvement_over_shortest_path": self.improvement_over_shortest_path(),
            "wall_clock_s": self.wall_clock_s,
        }
        if self.dynamics is not None:
            record["dynamics"] = self.dynamics.to_record()
        if self.provisioning is not None:
            record["provisioning"] = self.provisioning.to_record()
        return record


def evaluate_cell(
    spec: CellSpec, caches: Optional[WorkerCaches] = None
) -> CellOutcome:
    """Evaluate one cell: FUBAR plus every baseline on the same scenario.

    Static cells run one optimization; dynamic cells (scenarios carrying
    control-loop metadata) run the closed measure → optimize → install loop
    and report its final plan plus the per-epoch trajectory.  Provisioning
    cells (capacity-planning metadata) additionally answer their capacity
    question — the single-shot optimization still runs on the scenario
    network, so the comparison table stays populated.  Baselines and the
    upper bound are always computed on the base (epoch-0) matrix, which for
    dynamic cells is the reference the loop's trajectory starts from.

    *caches* are a worker's warm :class:`~repro.runner.worker.WorkerCaches`;
    when given, the optimization, the control loop, the capacity searches,
    the baselines and the upper bound all draw their path generators and
    traffic-model engines from them instead of building fresh ones.  The
    results are byte-identical either way (both caches key on topology
    content, and cached answers are deterministic), so sharing only changes
    how fast consecutive same-topology cells run.
    """
    started = time.perf_counter()  # repro: allow[PURE101] — wall-clock duration is telemetry on the record, never part of result equality or the cache key
    scenario = build_scenario(spec)
    path_cache = caches.path_cache if caches is not None else None
    model_cache = caches.model_cache if caches is not None else None
    provisioning_outcome: Optional[ProvisioningOutcome] = None
    if is_provisioning(scenario):
        provisioning_outcome = run_scenario_provisioning(
            scenario, path_cache=path_cache, model_cache=model_cache
        )
    loop_result: Optional[ControlLoopResult] = None
    if is_dynamic(scenario):
        loop_result = run_scenario_loop(
            scenario, path_cache=path_cache, model_cache=model_cache
        )
        if loop_result.final_plan is None:
            # Only possible when a failure strands every aggregate from the
            # very first epoch — there is no plan to compare against, so the
            # cell reports a clean per-cell error instead of crashing the
            # record builder.
            raise ExperimentError(
                f"cell {spec.label()} stranded every aggregate in every "
                "epoch; no plan was ever computed"
            )
        plan = loop_result.final_plan
    else:
        controller = Fubar(
            scenario.network,
            config=scenario.fubar_config,
            path_cache=path_cache,
            model_cache=model_cache,
        )
        plan = controller.optimize(scenario.traffic_matrix)
    if caches is not None:
        shared_generator = caches.generator_for(scenario.network)
        shared_model = caches.model_for(scenario.network)
        baselines = {
            name: runner(
                scenario.network,
                scenario.traffic_matrix,
                generator=shared_generator,
                model=shared_model,
            )
            for name, runner in _BASELINE_RUNNERS.items()
        }
        bound = upper_bound_utility(
            scenario.network,
            scenario.traffic_matrix,
            generator=shared_generator,
            model=shared_model,
        )
    else:
        baselines = {
            name: runner(scenario.network, scenario.traffic_matrix)
            for name, runner in _BASELINE_RUNNERS.items()
        }
        bound = upper_bound_utility(scenario.network, scenario.traffic_matrix)
    return CellOutcome(
        spec=spec,
        scenario=scenario,
        plan=plan,
        baselines=baselines,
        upper_bound=bound,
        wall_clock_s=time.perf_counter() - started,  # repro: allow[PURE101] — wall-clock duration is telemetry on the record, never part of result equality or the cache key
        dynamics=loop_result,
        provisioning=provisioning_outcome,
    )


def _evaluate_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: evaluate a spec dict, never raise across the pipe.

    ``run_sweep`` sends resolved specs (every default explicit) tagged with
    the parent-computed cache key and the original, compact display label;
    both are applied to the record so the cache filename, the record body
    and the report tables stay consistent.
    """
    spec = CellSpec.from_dict(payload)
    config_hash = payload.get("_config_hash", spec.config_hash())
    label = payload.get("_label", spec.label())
    try:
        record = evaluate_cell(spec, caches=active_worker_caches()).to_record()
        record["config_hash"] = config_hash
        record["label"] = label
        return record
    except Exception as error:  # noqa: BLE001 — reported per cell, sweep continues
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "config_hash": config_hash,
            "label": label,
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
        }


@dataclass
class SweepStats:
    """Bookkeeping of one sweep run."""

    cells: int = 0
    cache_hits: int = 0
    computed: int = 0
    failures: int = 0
    duplicates: int = 0
    wall_clock_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        # cells == cache_hits + computed + failures + duplicates, always.
        return {
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "failures": self.failures,
            "duplicates": self.duplicates,
            "wall_clock_s": self.wall_clock_s,
        }


@dataclass
class SweepResult:
    """Every cell record of a sweep, in spec order, plus run statistics."""

    records: List[Dict[str, object]] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def succeeded(self) -> List[Dict[str, object]]:
        return [record for record in self.records if "error" not in record]

    @property
    def failed(self) -> List[Dict[str, object]]:
        return [record for record in self.records if "error" in record]


def default_jobs(num_cells: int) -> int:
    """Worker count used when the caller does not pick one.

    Uses the scheduling affinity mask where the platform exposes one:
    ``os.cpu_count()`` reports the machine's cores even inside a
    cgroup-limited CI container, which would oversubscribe the box.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS / Windows
        available = os.cpu_count() or 1
    return max(1, min(num_cells, available))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork on Linux (cheap, inherits the imported interpreter).

    macOS lists fork as available but forking after Objective-C / Accelerate
    BLAS initialization is unsafe (which is why CPython switched its default
    to spawn there); everywhere except Linux the platform default is used.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(None)


def _worker_main(
    task_queue: "multiprocessing.queues.Queue",
    result_queue: "multiprocessing.queues.Queue",
    share_caches: bool,
) -> None:
    """Worker-process loop: evaluate affinity chunks until the sentinel.

    The pool initializer installs this process's :class:`WorkerCaches` once;
    every cell the worker evaluates then shares them (via
    :func:`active_worker_caches` inside :func:`_evaluate_payload`).
    """
    if share_caches:
        install_worker_caches()
    while True:
        chunk = task_queue.get()
        if chunk is None:
            break
        for payload in chunk:
            result_queue.put((payload["_config_hash"], _evaluate_payload(payload)))


def _affinity_chunks(
    payloads: Sequence[Mapping[str, object]], num_workers: int
) -> List[List[Mapping[str, object]]]:
    """Group payloads by cache affinity, splitting only to fill the pool.

    Cells sharing an affinity key stay in one chunk — and therefore on one
    worker, whose warm caches they hit back to back.  A group is split only
    when the sweep has fewer groups than workers (e.g. twelve seeds of one
    topology on a four-worker pool), trading some re-warming for
    parallelism.  Longest chunks are dispatched first (LPT scheduling) so a
    big topology group cannot arrive last and leave the pool idle behind it.
    """
    groups: Dict[str, List[Mapping[str, object]]] = {}
    for payload in payloads:
        groups.setdefault(str(payload["_affinity"]), []).append(payload)
    total = len(payloads)
    chunks: List[List[Mapping[str, object]]] = []
    for group in groups.values():
        # Number of pieces this group contributes, proportional to its share
        # of the work but never more than one piece per cell.
        parts = max(1, min(len(group), round(num_workers * len(group) / total)))
        size = math.ceil(len(group) / parts)
        for start in range(0, len(group), size):
            chunks.append(group[start : start + size])
    chunks.sort(key=len, reverse=True)
    return chunks


def iter_sweep(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    retry_errors: bool = True,
    share_caches: bool = True,
    progress: Optional[Callable[[str, CellSpec], None]] = None,
    stats: Optional[SweepStats] = None,
) -> Iterator[Tuple[str, Dict[str, object]]]:
    """Stream a sweep: yield ``(event, record)`` as each cell resolves.

    Events are ``"hit"`` (served from the result cache), ``"done"`` (freshly
    computed) and ``"error"`` (computed and failed, or a cached error served
    with ``retry_errors=False``).  Duplicate specs are counted in *stats*
    but not yielded.  Completed cells are cached the moment they arrive, so
    closing the generator mid-sweep (or killing the process) loses only the
    in-flight cells — a rerun serves everything finished as hits.

    Parameters
    ----------
    specs:
        The cells to evaluate.  Duplicate specs are computed once.
    jobs:
        Worker processes; defaults to ``min(len(specs), available cpus)``.
        ``jobs=1`` runs serially in-process (no pool), which is also the
        fallback when only one cell needs computing.
    cache:
        Result cache; defaults to :class:`ResultCache` at the default
        directory.  Pass ``force=True`` to recompute (and re-store) cells
        even when cached.
    retry_errors:
        When True (the default) cells with a cached error record are
        recomputed (and the error discarded if the retry succeeds).  When
        False, cached errors are served as ``"error"`` events without
        rerunning the cell — reruns of deterministic failures become
        explicit, not accidental.
    share_caches:
        Install process-local :class:`~repro.runner.worker.WorkerCaches` in
        every worker (and around the serial loop) so same-affinity cells
        reuse warm path/model state.  Disable to force the isolated
        cold-start behaviour (the correctness reference).
    progress:
        Optional callback invoked as ``progress(event, spec)`` with events
        ``"hit"``, ``"queued"``, ``"done"`` and ``"error"``.
    stats:
        Optional :class:`SweepStats` to update in place (``wall_clock_s`` is
        left to the caller, who knows when consumption finished).
    """
    cache = cache if cache is not None else ResultCache()
    notify = progress or (lambda event, spec: None)
    stats = stats if stats is not None else SweepStats()
    stats.cells += len(specs)

    # Cache keys come from the *resolved* specs (family defaults and the
    # environment scale made explicit) so that changing either can never be
    # served a stale cached result; the original compact specs are kept for
    # progress events and report labels.
    seen: set = set()
    pending: List[tuple] = []  # (original spec, resolved spec, config hash)
    for spec in specs:
        resolved = resolve_spec(spec)
        config_hash = resolved.config_hash()
        if config_hash in seen:
            stats.duplicates += 1
            continue
        seen.add(config_hash)
        cached = None if force else cache.load(config_hash)
        if cached is not None and "error" not in cached:
            stats.cache_hits += 1
            notify("hit", spec)
            yield "hit", cached
            continue
        if not force and not retry_errors:
            cached_error = cache.load_error(config_hash)
            if cached_error is not None:
                stats.failures += 1
                notify("error", spec)
                yield "error", cached_error
                continue
        pending.append((spec, resolved, config_hash))

    if not pending:
        return

    def finish(
        config_hash: str, spec: CellSpec, record: Dict[str, object]
    ) -> Tuple[str, Dict[str, object]]:
        # Store each record the moment it arrives, so an interrupted sweep
        # keeps every completed cell.
        if "error" in record:
            cache.store_error(config_hash, record)
            stats.failures += 1
            notify("error", spec)
            return "error", record
        cache.store(config_hash, record)
        cache.discard_error(config_hash)
        stats.computed += 1
        notify("done", spec)
        return "done", record

    resolved_jobs = jobs if jobs is not None else default_jobs(len(pending))
    payloads = []
    spec_by_hash: Dict[str, CellSpec] = {}
    for spec, resolved, config_hash in pending:
        payload = resolved.to_dict()
        payload["_config_hash"] = config_hash
        payload["_label"] = spec.label()
        payload["_affinity"] = resolved.cache_affinity_key()
        payloads.append(payload)
        spec_by_hash[config_hash] = spec
        notify("queued", spec)

    if resolved_jobs <= 1 or len(payloads) == 1:
        # Serial: the parent process plays the single worker.  Caches already
        # active in the process are reused when sharing (so repeated serial
        # sweeps stay warm) and suspended when not (so ``share_caches=False``
        # really is isolated); either way the prior state is restored.
        previous = active_worker_caches()
        if share_caches:
            if previous is None:
                install_worker_caches()
        elif previous is not None:
            clear_worker_caches()
        try:
            for payload in payloads:
                config_hash = payload["_config_hash"]
                yield finish(
                    config_hash, spec_by_hash[config_hash], _evaluate_payload(payload)
                )
        finally:
            if previous is not None:
                install_worker_caches(previous)
            elif share_caches:
                clear_worker_caches()
        return

    num_workers = min(resolved_jobs, len(payloads))
    chunks = _affinity_chunks(payloads, num_workers)
    num_workers = min(num_workers, len(chunks))
    context = _pool_context()
    task_queue = context.Queue()
    result_queue = context.Queue()
    workers = [
        context.Process(
            target=_worker_main,
            args=(task_queue, result_queue, share_caches),
            daemon=True,
        )
        for _ in range(num_workers)
    ]
    for worker in workers:
        worker.start()
    for chunk in chunks:
        task_queue.put(chunk)
    for _ in workers:
        task_queue.put(None)

    outstanding = len(payloads)
    try:
        while outstanding:
            try:
                config_hash, record = result_queue.get(timeout=1.0)
            except Empty:
                if any(worker.is_alive() for worker in workers):
                    continue
                # All workers exited; drain what they managed to produce.
                while outstanding:
                    try:
                        config_hash, record = result_queue.get_nowait()
                    except Empty:
                        break
                    outstanding -= 1
                    yield finish(config_hash, spec_by_hash[config_hash], record)
                if outstanding:
                    raise ExperimentError(
                        f"sweep lost {outstanding} cells: every worker exited "
                        "before the queue drained (a worker was killed?)"
                    )
                break
            outstanding -= 1
            yield finish(config_hash, spec_by_hash[config_hash], record)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=5.0)


def run_sweep(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    retry_errors: bool = True,
    share_caches: bool = True,
    progress: Optional[Callable[[str, CellSpec], None]] = None,
    on_record: Optional[Callable[[str, Dict[str, object]], None]] = None,
) -> SweepResult:
    """Run every cell in *specs*, in parallel, through the result cache.

    A convenience wrapper over :func:`iter_sweep` (which see, for the
    parameters): consumes the stream, invokes ``on_record(event, record)``
    on every yielded cell (the CLI's ``--stream-jsonl`` hook), and returns
    the records re-assembled in spec order — one record per input spec,
    duplicates sharing the dict — plus the run statistics.
    """
    started = time.perf_counter()
    stats = SweepStats()
    hashes = [resolve_spec(spec).config_hash() for spec in specs]
    records_by_hash: Dict[str, Dict[str, object]] = {}
    for event, record in iter_sweep(
        specs,
        jobs=jobs,
        cache=cache,
        force=force,
        retry_errors=retry_errors,
        share_caches=share_caches,
        progress=progress,
        stats=stats,
    ):
        records_by_hash[str(record["config_hash"])] = record
        if on_record is not None:
            on_record(event, record)
    stats.wall_clock_s = time.perf_counter() - started
    return SweepResult(
        records=[records_by_hash[config_hash] for config_hash in hashes], stats=stats
    )
