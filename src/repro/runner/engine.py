"""The parallel sweep engine.

:func:`evaluate_cell` runs one sweep cell end to end — build the scenario,
run FUBAR, run every baseline (shortest path, ECMP, min-max LP), compute the
upper bound — and returns a :class:`CellOutcome` holding both the rich
in-process objects (for benchmarks that want the optimizer trace) and a
JSON-serializable record (for the cache and the reports).

:func:`run_sweep` fans a list of :class:`~repro.runner.spec.CellSpec` out
over a ``multiprocessing`` pool.  The parent process resolves cache hits
first so workers only ever compute genuinely new cells; every finished cell
is written back to the cache as soon as it arrives.  Cells are fully
described by their picklable specs and derive all randomness from the spec
seed, so parallel execution is exactly as reproducible as a serial run.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.baselines.common import BaselineResult
from repro.baselines.ecmp import ecmp_routing
from repro.baselines.minmax_lp import minmax_lp_routing
from repro.baselines.shortest_path import shortest_path_routing
from repro.baselines.upper_bound import upper_bound_utility
from repro.core.controller import Fubar, FubarPlan
from repro.dynamics.loop import ControlLoopResult
from repro.dynamics.scenarios import is_dynamic, run_scenario_loop
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import Scenario
from repro.metrics.reporting import relative_improvement
from repro.provisioning.scenarios import (
    ProvisioningOutcome,
    is_provisioning,
    run_scenario_provisioning,
)
from repro.runner.cache import ResultCache
from repro.runner.registry import build_scenario, resolve_spec
from repro.runner.spec import SPEC_SCHEMA_VERSION, CellSpec

#: Records and spec hashing share one schema version: an incompatible record
#: change must bump ``SPEC_SCHEMA_VERSION`` in :mod:`repro.runner.spec`,
#: which also invalidates every cached entry.
RECORD_SCHEMA_VERSION = SPEC_SCHEMA_VERSION

_BASELINE_RUNNERS: Dict[str, Callable] = {
    "shortest-path": shortest_path_routing,
    "ecmp": ecmp_routing,
    "minmax-lp": minmax_lp_routing,
}

#: The baseline schemes every cell is compared against, in report order.
BASELINE_SCHEMES = tuple(_BASELINE_RUNNERS)


@dataclass
class CellOutcome:
    """The full in-process result of evaluating one cell."""

    spec: CellSpec
    scenario: Scenario
    plan: FubarPlan
    baselines: Dict[str, BaselineResult]
    upper_bound: float
    wall_clock_s: float
    #: Per-epoch control-loop trajectory; None for static (single-shot) cells.
    dynamics: Optional[ControlLoopResult] = None
    #: Capacity-planning answer (frontier / upgrade plan / survivable
    #: capacity); None for cells without provisioning metadata.
    provisioning: Optional[ProvisioningOutcome] = None

    @property
    def final_utility(self) -> float:
        """FUBAR's final (unweighted) network utility."""
        return self.plan.network_utility

    @property
    def shortest_path_utility(self) -> float:
        """The shortest-path lower-bound reference."""
        return self.baselines["shortest-path"].network_utility

    def improvement_over_shortest_path(self) -> Optional[float]:
        """Relative utility improvement of FUBAR over shortest-path routing,
        or ``None`` when the shortest-path utility is non-positive.

        Also ``None`` for dynamic cells: the loop's final plan is scored on
        the final *measured* matrix while the baseline routes the base
        matrix, so the ratio would compare different demand; reports render
        it "n/a" and show the per-epoch trajectory instead."""
        if self.dynamics is not None:
            return None
        return relative_improvement(self.final_utility, self.shortest_path_utility)

    def to_record(self) -> Dict[str, object]:
        """The JSON-serializable record cached and consumed by reports."""
        weights = self.scenario.fubar_config.priority_weights
        model = self.plan.result.model_result
        schemes: Dict[str, Dict[str, object]] = {
            "fubar": {
                "utility": model.network_utility(),
                "weighted_utility": model.network_utility(weights),
                "total_utilization": model.total_utilization(),
                "demanded_utilization": model.demanded_utilization(),
                "congested_links": len(model.congested_links),
                "steps": self.plan.result.num_steps,
                "wall_clock_s": self.plan.result.wall_clock_s,
                "termination": self.plan.result.termination_reason,
            }
        }
        for name, baseline in self.baselines.items():
            schemes[name] = {
                "utility": baseline.network_utility,
                "weighted_utility": baseline.weighted_utility(weights),
                "total_utilization": baseline.model_result.total_utilization(),
                "demanded_utilization": baseline.model_result.demanded_utilization(),
                "congested_links": len(baseline.model_result.congested_links),
            }
        record = {
            "schema": RECORD_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "config_hash": self.spec.config_hash(),
            "label": self.spec.label(),
            "scenario": dict(self.scenario.summary()),
            "schemes": schemes,
            "upper_bound_utility": self.upper_bound,
            "improvement_over_shortest_path": self.improvement_over_shortest_path(),
            "wall_clock_s": self.wall_clock_s,
        }
        if self.dynamics is not None:
            record["dynamics"] = self.dynamics.to_record()
        if self.provisioning is not None:
            record["provisioning"] = self.provisioning.to_record()
        return record


def evaluate_cell(spec: CellSpec) -> CellOutcome:
    """Evaluate one cell: FUBAR plus every baseline on the same scenario.

    Static cells run one optimization; dynamic cells (scenarios carrying
    control-loop metadata) run the closed measure → optimize → install loop
    and report its final plan plus the per-epoch trajectory.  Provisioning
    cells (capacity-planning metadata) additionally answer their capacity
    question — the single-shot optimization still runs on the scenario
    network, so the comparison table stays populated.  Baselines and the
    upper bound are always computed on the base (epoch-0) matrix, which for
    dynamic cells is the reference the loop's trajectory starts from.
    """
    started = time.perf_counter()
    scenario = build_scenario(spec)
    provisioning_outcome: Optional[ProvisioningOutcome] = None
    if is_provisioning(scenario):
        provisioning_outcome = run_scenario_provisioning(scenario)
    loop_result: Optional[ControlLoopResult] = None
    if is_dynamic(scenario):
        loop_result = run_scenario_loop(scenario)
        if loop_result.final_plan is None:
            # Only possible when a failure strands every aggregate from the
            # very first epoch — there is no plan to compare against, so the
            # cell reports a clean per-cell error instead of crashing the
            # record builder.
            raise ExperimentError(
                f"cell {spec.label()} stranded every aggregate in every "
                "epoch; no plan was ever computed"
            )
        plan = loop_result.final_plan
    else:
        controller = Fubar(scenario.network, config=scenario.fubar_config)
        plan = controller.optimize(scenario.traffic_matrix)
    baselines = {
        name: runner(scenario.network, scenario.traffic_matrix)
        for name, runner in _BASELINE_RUNNERS.items()
    }
    bound = upper_bound_utility(scenario.network, scenario.traffic_matrix)
    return CellOutcome(
        spec=spec,
        scenario=scenario,
        plan=plan,
        baselines=baselines,
        upper_bound=bound,
        wall_clock_s=time.perf_counter() - started,
        dynamics=loop_result,
        provisioning=provisioning_outcome,
    )


def _evaluate_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: evaluate a spec dict, never raise across the pipe.

    ``run_sweep`` sends resolved specs (every default explicit) tagged with
    the parent-computed cache key and the original, compact display label;
    both are applied to the record so the cache filename, the record body
    and the report tables stay consistent.
    """
    spec = CellSpec.from_dict(payload)
    config_hash = payload.get("_config_hash", spec.config_hash())
    label = payload.get("_label", spec.label())
    try:
        record = evaluate_cell(spec).to_record()
        record["config_hash"] = config_hash
        record["label"] = label
        return record
    except Exception as error:  # noqa: BLE001 — reported per cell, sweep continues
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "config_hash": config_hash,
            "label": label,
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
        }


def _evaluate_tagged_payload(payload: Mapping[str, object]):
    """Pool worker wrapper pairing each result with its cache key."""
    return payload["_config_hash"], _evaluate_payload(payload)


@dataclass
class SweepStats:
    """Bookkeeping of one sweep run."""

    cells: int = 0
    cache_hits: int = 0
    computed: int = 0
    failures: int = 0
    duplicates: int = 0
    wall_clock_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        # cells == cache_hits + computed + failures + duplicates, always.
        return {
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "failures": self.failures,
            "duplicates": self.duplicates,
            "wall_clock_s": self.wall_clock_s,
        }


@dataclass
class SweepResult:
    """Every cell record of a sweep, in spec order, plus run statistics."""

    records: List[Dict[str, object]] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def succeeded(self) -> List[Dict[str, object]]:
        return [record for record in self.records if "error" not in record]

    @property
    def failed(self) -> List[Dict[str, object]]:
        return [record for record in self.records if "error" in record]


def default_jobs(num_cells: int) -> int:
    """Worker count used when the caller does not pick one."""
    return max(1, min(num_cells, os.cpu_count() or 1))


def _pool_context():
    """Prefer fork on Linux (cheap, inherits the imported interpreter).

    macOS lists fork as available but forking after Objective-C / Accelerate
    BLAS initialization is unsafe (which is why CPython switched its default
    to spawn there); everywhere except Linux the platform default is used.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(None)


def run_sweep(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    progress: Optional[Callable[[str, CellSpec], None]] = None,
) -> SweepResult:
    """Run every cell in *specs*, in parallel, through the result cache.

    Parameters
    ----------
    specs:
        The cells to evaluate.  Duplicate specs are computed once.
    jobs:
        Worker processes; defaults to ``min(len(specs), cpu_count)``.
        ``jobs=1`` runs serially in-process (no pool), which is also the
        fallback when only one cell needs computing.
    cache:
        Result cache; defaults to :class:`ResultCache` at the default
        directory.  Pass ``force=True`` to recompute (and re-store) cells
        even when cached.
    progress:
        Optional callback invoked as ``progress(event, spec)`` with events
        ``"hit"`` (served from cache), ``"queued"`` (handed to the worker
        pool — actual start times are not observable from the parent),
        ``"done"`` and ``"error"``.
    """
    started = time.perf_counter()
    cache = cache if cache is not None else ResultCache()
    notify = progress or (lambda event, spec: None)

    stats = SweepStats(cells=len(specs))
    # Cache keys come from the *resolved* specs (family defaults and the
    # environment scale made explicit) so that changing either can never be
    # served a stale cached result; the original compact specs are kept for
    # progress events and report labels.
    resolved_specs = [resolve_spec(spec) for spec in specs]
    hashes = [resolved.config_hash() for resolved in resolved_specs]
    records_by_hash: Dict[str, Dict[str, object]] = {}
    pending_by_hash: Dict[str, tuple] = {}  # hash -> (original, resolved)
    for spec, resolved, config_hash in zip(specs, resolved_specs, hashes):
        if config_hash in records_by_hash or config_hash in pending_by_hash:
            stats.duplicates += 1
            continue
        cached = None if force else cache.load(config_hash)
        if cached is not None and "error" not in cached:
            records_by_hash[config_hash] = cached
            stats.cache_hits += 1
            notify("hit", spec)
        else:
            pending_by_hash[config_hash] = (spec, resolved)

    def finish(config_hash: str, record: Dict[str, object]) -> None:
        # Store each record the moment it arrives, so an interrupted sweep
        # keeps every completed cell.
        records_by_hash[config_hash] = record
        spec, _ = pending_by_hash[config_hash]
        if "error" in record:
            stats.failures += 1
            notify("error", spec)
        else:
            cache.store(config_hash, record)
            stats.computed += 1
            notify("done", spec)

    if pending_by_hash:
        resolved_jobs = jobs if jobs is not None else default_jobs(len(pending_by_hash))
        payloads = []
        for config_hash, (spec, resolved) in pending_by_hash.items():
            payload = resolved.to_dict()
            payload["_config_hash"] = config_hash
            payload["_label"] = spec.label()
            payloads.append(payload)
            notify("queued", spec)
        if resolved_jobs <= 1 or len(payloads) == 1:
            for payload in payloads:
                finish(payload["_config_hash"], _evaluate_payload(payload))
        else:
            context = _pool_context()
            with context.Pool(processes=min(resolved_jobs, len(payloads))) as pool:
                for config_hash, record in pool.imap_unordered(
                    _evaluate_tagged_payload, payloads
                ):
                    finish(config_hash, record)

    stats.wall_clock_s = time.perf_counter() - started
    # One record per input spec, in spec order; duplicates share the dict.
    return SweepResult(
        records=[records_by_hash[config_hash] for config_hash in hashes], stats=stats
    )
