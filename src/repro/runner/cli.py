"""The ``python -m repro.runner`` command-line interface.

Five subcommands drive the sweep machinery:

``list``
    Show every registered scenario family, its defaults and sweepable axes,
    plus the named sweep presets.
``run``
    Evaluate a single cell (family + overrides + seed) and print its
    comparison against the baselines.
``sweep``
    Run a grid of cells in parallel through the result cache and print the
    aggregated comparison report; ``--report`` additionally writes a
    markdown report and ``--stream-jsonl`` appends every finished cell to a
    JSONL stream the moment it completes.
``report``
    Re-render the report from cached results (or, with ``--from-jsonl``,
    from a possibly partial sweep stream) without running anything.
``cache``
    Inspect or maintain the result cache: ``list`` entries, ``prune`` stale
    schemas, ``clear`` everything.

Examples
--------
::

    python -m repro.runner list
    python -m repro.runner run he-provisioned --set num_pops=6 --seed 1
    python -m repro.runner run he-capacity-plan --set target_utility=0.97
    python -m repro.runner sweep --jobs 4 --seeds 0,1
    python -m repro.runner sweep --preset provisioning --stream-jsonl sweep.jsonl
    python -m repro.runner sweep --family waxman --family random-core --seeds 0:3
    python -m repro.runner report --output sweep-report.md
    python -m repro.runner report --from-jsonl sweep.jsonl
    python -m repro.runner cache prune
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from repro.exceptions import ExperimentError
from repro.metrics.reporting import format_table
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.runner.engine import run_sweep
from repro.runner.registry import (
    SWEEP_PRESETS,
    expand_failure_specs,
    get_family,
    list_families,
)
from repro.runner.report import (
    append_jsonl_record,
    format_markdown_report,
    format_sweep_report,
    load_jsonl_records,
)
from repro.runner.spec import SPEC_SCHEMA_VERSION, CellSpec, parse_param_overrides


def _parse_seeds(text: str) -> List[int]:
    """Parse ``--seeds`` values: ``3`` · ``0,1,2`` · ``0:5`` (half-open)."""
    text = text.strip()
    try:
        if ":" in text:
            start_text, _, stop_text = text.partition(":")
            start, stop = int(start_text or 0), int(stop_text)
            if stop <= start:
                raise ExperimentError(f"empty seed range {text!r}")
            return list(range(start, stop))
        if "," in text:
            seeds = [int(part) for part in text.split(",") if part.strip()]
            if not seeds:
                raise ValueError(text)
            return seeds
        return [int(text)]
    except ValueError:
        raise ExperimentError(
            f"invalid --seeds value {text!r}; expected '3', '0,1,2' or '0:5'"
        ) from None


def _progress_printer(stream: TextIO) -> Callable[[str, CellSpec], None]:
    def notify(event: str, spec: CellSpec) -> None:
        tag = {"hit": "cache", "queued": "queue", "done": "done ", "error": "FAIL "}.get(
            event, event
        )
        print(f"[{tag}] {spec.label()}", file=stream, flush=True)

    return notify


# ------------------------------------------------------------------ commands


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for family in list_families():
        defaults = ", ".join(f"{k}={v}" for k, v in sorted(family.defaults.items()))
        rows.append((family.name, family.description, defaults or "-"))
    print(format_table(("family", "description", "defaults"), rows))
    print()
    sweepable = sorted({axis for family in list_families() for axis in family.sweepable})
    print("sweepable axes: " + ", ".join(sweepable))
    print("presets: " + ", ".join(sorted(SWEEP_PRESETS)))
    print(f"cache dir: {default_cache_dir()} (override with --cache-dir)")
    return 0


def _make_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir) if args.cache_dir else ResultCache()


def _cmd_run(args: argparse.Namespace) -> int:
    get_family(args.family)  # fail fast with the registry's error message
    spec = CellSpec(
        family=args.family,
        params=parse_param_overrides(args.set),
        seed=args.seed,
    )
    result = run_sweep(
        [spec],
        jobs=1,
        cache=_make_cache(args),
        force=args.force,
        progress=_progress_printer(sys.stderr),
    )
    print(format_sweep_report(result.records, result.stats.as_dict()))
    record = result.records[0]
    if "error" in record:
        print(record.get("traceback", ""), file=sys.stderr)
        return 1
    print(f"\nconfig hash: {record['config_hash']}")
    return 0


def _build_sweep_specs(args: argparse.Namespace) -> List[CellSpec]:
    seeds = _parse_seeds(args.seeds)
    if args.family:
        overrides = parse_param_overrides(args.set)
        specs = []
        for name in args.family:
            get_family(name)
            specs.extend(CellSpec(name, overrides, seed=seed) for seed in seeds)
        # Survivability sweeps: a failure-family spec without an explicit
        # target enumerates every single failure of its topology.
        return expand_failure_specs(specs)
    if args.set:
        raise ExperimentError("--set requires --family (presets fix their parameters)")
    try:
        preset = SWEEP_PRESETS[args.preset]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {args.preset!r}; available: {', '.join(sorted(SWEEP_PRESETS))}"
        ) from None
    return expand_failure_specs(
        [
            CellSpec(spec.family, spec.params, seed=seed)
            for seed in seeds
            for spec in preset()
        ]
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    specs = _build_sweep_specs(args)
    on_record = None
    if args.stream_jsonl:
        stream_path = Path(args.stream_jsonl)

        def on_record(event: str, record: Dict[str, object]) -> None:  # noqa: F811
            append_jsonl_record(stream_path, record)

    result = run_sweep(
        specs,
        jobs=args.jobs,
        cache=_make_cache(args),
        force=args.force,
        retry_errors=args.retry_errors,
        share_caches=args.share_caches,
        progress=_progress_printer(sys.stderr),
        on_record=on_record,
    )
    print(format_sweep_report(result.records, result.stats.as_dict()))
    if args.report:
        path = Path(args.report)
        path.write_text(
            format_markdown_report(result.records, result.stats.as_dict()),
            encoding="utf-8",
        )
        print(f"\nmarkdown report written to {path}")
    return 1 if result.failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.from_jsonl:
        records = load_jsonl_records(args.from_jsonl)
        if not records:
            print(f"no readable records in {args.from_jsonl}", file=sys.stderr)
            return 1
    else:
        cache = _make_cache(args)
        records = list(cache.records())
        if not records:
            print(f"no cached results under {cache.directory}", file=sys.stderr)
            return 1
    records.sort(key=lambda record: str(record.get("label", "")))
    print(format_sweep_report(records))
    if args.output:
        path = Path(args.output)
        path.write_text(format_markdown_report(records), encoding="utf-8")
        print(f"\nmarkdown report written to {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    if args.action == "list":
        hashes = cache.hashes()
        errors = cache.error_hashes()
        for config_hash in hashes:
            record = cache.load(config_hash) or {}
            print(f"{config_hash}  {record.get('label', '?')}")
        for config_hash in errors:
            record = cache.load_error(config_hash) or {}
            print(f"{config_hash}  {record.get('label', '?')}  [error]")
        print(
            f"{len(hashes)} result(s), {len(errors)} cached error(s) "
            f"under {cache.directory}",
            file=sys.stderr,
        )
        return 0
    if args.action == "prune":
        removed = cache.prune(SPEC_SCHEMA_VERSION)
        print(
            f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
            f"(schema != {SPEC_SCHEMA_VERSION}) from {cache.directory}"
        )
        return 0
    removed = cache.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {cache.directory}")
    return 0


# -------------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel scenario-sweep runner for the FUBAR reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_cache_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR}, "
            "or $FUBAR_CACHE_DIR)",
        )
        sub.add_argument(
            "--force",
            action="store_true",
            help="recompute cells even when a cached result exists",
        )

    sub = subparsers.add_parser("list", help="list scenario families and presets")
    sub.set_defaults(handler=_cmd_list)

    sub = subparsers.add_parser("run", help="evaluate a single scenario cell")
    sub.add_argument("family", help="scenario family name (see `list`)")
    sub.add_argument("--seed", type=int, default=0, help="cell seed (default 0)")
    sub.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override a family parameter (repeatable)",
    )
    add_cache_args(sub)
    sub.set_defaults(handler=_cmd_run)

    sub = subparsers.add_parser("sweep", help="run a grid of cells in parallel")
    sub.add_argument(
        "--preset",
        default="default",
        help="named sweep preset (default: 'default'; see `list`)",
    )
    sub.add_argument(
        "--family",
        action="append",
        help="sweep these families instead of a preset (repeatable)",
    )
    sub.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="parameter overrides applied to every --family cell (repeatable)",
    )
    sub.add_argument(
        "--seeds",
        default="0",
        help="seeds per cell: '3', '0,1,2' or '0:5' (default '0')",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: min(cells, cpu count))",
    )
    sub.add_argument("--report", help="also write a markdown report to this path")
    sub.add_argument(
        "--stream-jsonl",
        metavar="PATH",
        help="append every finished cell record to this JSONL file as it "
        "completes (resumable; render with `report --from-jsonl`)",
    )
    sub.add_argument(
        "--retry-errors",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="recompute cells with a cached error record "
        "(--no-retry-errors serves the cached error instead)",
    )
    sub.add_argument(
        "--share-caches",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse warm per-worker path/model caches across same-topology "
        "cells (--no-share-caches forces isolated cold starts)",
    )
    add_cache_args(sub)
    sub.set_defaults(handler=_cmd_sweep)

    sub = subparsers.add_parser("report", help="re-render the report from the cache")
    sub.add_argument("--output", help="also write a markdown report to this path")
    sub.add_argument(
        "--from-jsonl",
        metavar="PATH",
        help="render from a sweep's --stream-jsonl file (works on the "
        "partial stream of an interrupted sweep) instead of the cache",
    )
    add_cache_args(sub)
    sub.set_defaults(handler=_cmd_report)

    sub = subparsers.add_parser("cache", help="inspect or maintain the result cache")
    sub.add_argument(
        "action",
        choices=("list", "prune", "clear"),
        help="list entries / prune stale-schema entries / delete everything",
    )
    add_cache_args(sub)
    sub.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
