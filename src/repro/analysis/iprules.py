"""The interprocedural (program-scope) rules.

Every rule here consumes the :class:`~repro.analysis.callgraph.ProgramModel`
— module summaries, the resolved call graph, and ``analysis.toml`` — and
proves a whole-program property the per-file rules structurally cannot:

* **SEED101** — every RNG construction reachable from ``evaluate_cell`` or
  a registered scenario-family builder must be data-flow-derivable from the
  cell seed parameter.  DET003 catches *unseeded* constructions; this
  catches *wrongly seeded* ones (a constant, the wall clock, a module
  global) any number of call levels below the entry point.
* **PURE101** — functions whose return values end up in a cache must be
  transitively free of ambient reads (env vars, wall clock, filesystem,
  host identity): the interprocedural completion of SIG001's
  key-completeness check.
* **ASY101** — no blocking call may be transitively reachable from modules
  declared async-ready in ``[analysis.async_ready]``; the asyncio-daemon
  migration starts from a machine-checked inventory.
* **MP101** — module-level mutable state written after import by code
  reachable from a worker entry point (pool submission, ``Process``
  target): such writes silently diverge across fork/spawn workers.
* **DEAD101** — public module-level functions never referenced from any
  entry point (CLI, runners, benchmarks, tests, examples).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import PROGRAM_SCOPE, Rule, Violation
from repro.analysis.callgraph import ProgramModel, render_chain
from repro.analysis.config import AnalysisConfig
from repro.analysis.flow import propagate_taint, store_producers
from repro.analysis.registry import register_rule
from repro.analysis.summaries import MODULE_BODY, FunctionSummary

#: The sweep-cell entry point whose parameters carry the cell seed.
_CELL_ENTRY_NAME = "evaluate_cell"

#: Class whose ``builder=`` keyword registers a scenario-family entry point.
_FAMILY_CLASS_TERMINAL = "ScenarioFamily"

#: The builder parameter that carries the scenario seed.
_SEED_PARAM = "seed"


def _sorted_functions(program: ProgramModel) -> List[Tuple[str, FunctionSummary]]:
    graph = program.graph
    return [(fqid, graph.functions[fqid]) for fqid in sorted(graph.functions)]


def _seed_roots(program: ProgramModel) -> Dict[str, FrozenSet[str]]:
    """Entry fqids → tainted parameter names for SEED101."""
    roots: Dict[str, FrozenSet[str]] = {}
    graph = program.graph
    for fqid, summary in _sorted_functions(program):
        if summary.name == _CELL_ENTRY_NAME and summary.class_name is None:
            roots[fqid] = frozenset(summary.params)
    # Builders wired through ``ScenarioFamily(builder=...)``.
    for fqid, summary in _sorted_functions(program):
        module_name = graph.function_module[fqid]
        for site in summary.calls:
            if site.target.rsplit(".", 1)[-1] != _FAMILY_CLASS_TERMINAL:
                continue
            for name, flow in site.keywords:
                if name != "builder" or flow.params or len(flow.names) != 1:
                    continue
                resolved = _resolve_builder(program, module_name, flow.names[0])
                if resolved is None:
                    continue
                builder_summary = graph.functions[resolved]
                taint = (
                    frozenset({_SEED_PARAM})
                    if _SEED_PARAM in builder_summary.params
                    else frozenset(builder_summary.params)
                )
                roots[resolved] = roots.get(resolved, frozenset()) | taint
    return roots


def _resolve_builder(
    program: ProgramModel, module_name: str, canonical: str
) -> Optional[str]:
    candidates = program.graph.functions
    resolved = canonical
    if resolved in candidates:
        return resolved
    # Bare name: the builder lives in (or is imported into) the caller module.
    if "." not in canonical:
        local = f"{module_name}.{canonical}"
        if local in candidates:
            return local
        module = program.modules.get(module_name)
        if module is not None:
            imported = dict(module.imports).get(canonical)
            if imported is not None and imported in candidates:
                return imported
        return None
    # Re-exported dotted name (``repro.experiments.build_x``).
    prefix, _, terminal = canonical.rpartition(".")
    for fqid in sorted(candidates):
        if fqid.endswith(f".{terminal}") and fqid.startswith(prefix.split(".")[0]):
            summary = candidates[fqid]
            if summary.class_name is None and summary.name == terminal:
                return fqid
    return None


@register_rule
class Seed101(Rule):
    """RNG constructions reachable from an entry must derive from its seed."""

    code = "SEED101"
    summary = (
        "RNG construction reachable from evaluate_cell or a scenario-family "
        "builder is not derived from the cell seed parameter"
    )
    scope = PROGRAM_SCOPE

    def check_program(self, program: ProgramModel) -> Iterator[Violation]:
        roots = _seed_roots(program)
        if not roots:
            return
        result = propagate_taint(program.graph, roots)
        seen: Set[Tuple[str, int, int]] = set()
        for fqid in sorted(result.chains):
            summary = program.graph.functions[fqid]
            tainted = result.tainted.get(fqid, frozenset())
            path = program.path_for(fqid)
            for site in summary.rng_sites:
                if site.kind == "missing":
                    continue  # DET003's department: unseeded construction
                if site.kind == "derived" and tainted.intersection(site.seed.params):
                    continue
                key = (path, site.line, site.column)
                if key in seen:
                    continue
                seen.add(key)
                yield Violation(
                    path=path,
                    line=site.line,
                    column=site.column,
                    code=self.code,
                    message=(
                        f"{site.constructor} seeded with a {site.kind} value, "
                        f"not the cell seed; reachable via "
                        f"{render_chain(result.chains[fqid])}"
                    ),
                )


@register_rule
class Pure101(Rule):
    """Cache-stored values must come from ambient-free producers."""

    code = "PURE101"
    summary = (
        "function whose result is cached performs an ambient read (env, "
        "clock, filesystem, host) the cache key cannot capture"
    )
    scope = PROGRAM_SCOPE

    def check_program(self, program: ProgramModel) -> Iterator[Violation]:
        graph = program.graph
        seen: Set[Tuple[str, int, int]] = set()
        for fqid, summary in _sorted_functions(program):
            for store in summary.store_sites:
                producers = store_producers(graph, fqid, store)
                if not producers:
                    continue
                reach = graph.reachable(producers)
                for reached in sorted(reach):
                    reached_summary = graph.functions[reached]
                    path = program.path_for(reached)
                    for read in reached_summary.ambient_reads:
                        key = (path, read.line, read.column)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield Violation(
                            path=path,
                            line=read.line,
                            column=read.column,
                            code=self.code,
                            message=(
                                f"ambient {read.kind} read ({read.name}) in a "
                                f"cached computation: value stored at "
                                f"{program.path_for(fqid)}:{store.line} via "
                                f"{render_chain(reach[reached])}"
                            ),
                        )


@register_rule
class Asy101(Rule):
    """Async-ready modules must not reach blocking calls."""

    code = "ASY101"
    summary = (
        "blocking call (sleep, sync I/O, subprocess, pool join) transitively "
        "reachable from a module declared in [analysis.async_ready]"
    )
    scope = PROGRAM_SCOPE

    def is_enabled(self, config: "AnalysisConfig") -> bool:
        return bool(config.async_ready_modules)

    def check_program(self, program: ProgramModel) -> Iterator[Violation]:
        declared = program.config.async_ready_modules
        if not declared:
            return
        graph = program.graph
        roots: List[str] = []
        for fqid in sorted(graph.functions):
            module_name = graph.function_module[fqid]
            if _module_matches(module_name, declared):
                roots.append(fqid)
        reach = graph.reachable(roots)
        seen: Set[Tuple[str, int, int]] = set()
        for reached in sorted(reach):
            summary = graph.functions[reached]
            path = program.path_for(reached)
            for site in summary.blocking_calls:
                key = (path, site.line, site.column)
                if key in seen:
                    continue
                seen.add(key)
                yield Violation(
                    path=path,
                    line=site.line,
                    column=site.column,
                    code=self.code,
                    message=(
                        f"blocking call {site.name} reachable from async-ready "
                        f"module {graph.function_module[reach[reached][0]]} via "
                        f"{render_chain(reach[reached])}"
                    ),
                )


def _module_matches(module_name: str, declared: Sequence[str]) -> bool:
    for entry in declared:
        if module_name == entry or module_name.startswith(entry + "."):
            return True
    return False


@register_rule
class Mp101(Rule):
    """Worker-reachable code must not write module-level state."""

    code = "MP101"
    summary = (
        "module-level mutable state written after import by code reachable "
        "from a worker entry point (pool submission / Process target)"
    )
    scope = PROGRAM_SCOPE

    def check_program(self, program: ProgramModel) -> Iterator[Violation]:
        graph = program.graph
        roots: Set[str] = set()
        for caller in sorted(graph.edges_from):
            for edge in graph.edges_from[caller]:
                if edge.kind == "submit":
                    roots.add(edge.callee)
        if not roots:
            return
        reach = graph.reachable(sorted(roots))
        seen: Set[Tuple[str, int, int]] = set()
        for reached in sorted(reach):
            summary = graph.functions[reached]
            if summary.qualname == MODULE_BODY:
                continue  # import-time initialization is not an after-import write
            path = program.path_for(reached)
            for write in summary.global_writes:
                key = (path, write.line, write.column)
                if key in seen:
                    continue
                seen.add(key)
                yield Violation(
                    path=path,
                    line=write.line,
                    column=write.column,
                    code=self.code,
                    message=(
                        f"worker-reachable code writes module-level state "
                        f"{write.name!r} ({write.kind}); workers must keep all "
                        f"mutable state in WorkerCaches — via "
                        f"{render_chain(reach[reached])}"
                    ),
                )


@register_rule
class Dead101(Rule):
    """Public functions unreachable from every entry point are dead."""

    code = "DEAD101"
    summary = (
        "public module-level function never referenced from any entry point "
        "(CLI, runners, benchmarks, tests)"
    )
    scope = PROGRAM_SCOPE

    def is_enabled(self, config: "AnalysisConfig") -> bool:
        return bool(config.dead_code_packages)

    def check_program(self, program: ProgramModel) -> Iterator[Violation]:
        packages = program.config.dead_code_packages
        if not packages:
            return
        audited = [
            name
            for name in sorted(program.modules)
            if _module_matches(name, packages)
        ]
        has_candidates = any(
            function.public and function.class_name is None
            and "." not in function.qualname
            for name in audited
            for function in program.modules[name].functions
        )
        if not has_candidates:
            return
        live = self._liveness(program)
        for module_name in audited:
            summary = program.modules[module_name]
            for function in summary.functions:
                if (
                    not function.public
                    or function.class_name is not None
                    or "." in function.qualname
                    or function.name in ("main", MODULE_BODY)
                ):
                    continue
                if function.name in live:
                    continue
                yield Violation(
                    path=summary.path,
                    line=function.line,
                    column=1,
                    code=self.code,
                    message=(
                        f"public function {function.name!r} is never referenced "
                        f"from any entry point (CLI, runners, benchmarks, "
                        f"tests); delete it or exercise it"
                    ),
                )

    def _liveness(self, program: ProgramModel) -> FrozenSet[str]:
        """Terminal-name closure: reference roots + import-time references,
        expanded through the bodies of live functions and classes."""
        live: Set[str] = set(program.reference_names())
        by_name: Dict[str, List[FunctionSummary]] = {}
        class_methods: Dict[str, List[FunctionSummary]] = {}
        for module_name in sorted(program.modules):
            summary = program.modules[module_name]
            for function in summary.functions:
                if function.qualname == MODULE_BODY:
                    live.update(function.references)
                elif function.class_name is not None:
                    class_methods.setdefault(function.class_name, []).append(
                        function
                    )
                    by_name.setdefault(function.name, []).append(function)
                else:
                    by_name.setdefault(function.name, []).append(function)
        expanded: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(live):
                if name in expanded:
                    continue
                expanded.add(name)
                for function in by_name.get(name, ()):
                    for reference in function.references:
                        if reference not in live:
                            live.add(reference)
                            changed = True
                for method in class_methods.get(name, ()):
                    for reference in method.references:
                        if reference not in live:
                            live.add(reference)
                            changed = True
        return frozenset(live)


def async_readiness_map(program: ProgramModel) -> Dict[str, Dict[str, object]]:
    """Per-module async readiness: blocking sites transitively reachable.

    Informational (the ``--async-map`` CLI mode): unlike ASY101 this covers
    *every* analyzed module, so it is the planning inventory for choosing
    which modules to declare in ``[analysis.async_ready]``.
    """
    graph = program.graph
    by_module: Dict[str, List[str]] = {}
    for fqid in sorted(graph.functions):
        by_module.setdefault(graph.function_module[fqid], []).append(fqid)
    result: Dict[str, Dict[str, object]] = {}
    for module_name in sorted(by_module):
        reach = graph.reachable(by_module[module_name])
        sites: List[str] = []
        for reached in sorted(reach):
            summary = graph.functions[reached]
            for site in summary.blocking_calls:
                sites.append(
                    f"{program.path_for(reached)}:{site.line} {site.name}"
                )
        unique = sorted(set(sites))
        result[module_name] = {
            "ready": not unique,
            "blocking_sites": unique,
        }
    return result
