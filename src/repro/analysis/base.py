"""Core datatypes of the static-analysis framework.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) — or,
for project-scoped rules, every parsed module at once — and yields
:class:`Violation` records.  Rules never mutate anything and never execute
the code under analysis; everything is derived from the AST and the raw
source lines, so analysis is safe to run on arbitrary trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import ProgramModel
    from repro.analysis.config import AnalysisConfig

#: Rules that look at one file at a time (run in parallel across files).
FILE_SCOPE = "file"

#: Rules that need every parsed module at once (run once, in-process).
PROJECT_SCOPE = "project"

#: Rules that need the whole-program call graph and dataflow summaries.
PROGRAM_SCOPE = "program"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a source location."""

    path: str
    line: int
    column: int
    code: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


@dataclass
class ModuleContext:
    """A parsed module handed to rules: path, source text, AST, and lines."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        """Parse *source*; raises :class:`SyntaxError` on unparsable input."""
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, lines=source.splitlines())

    def violation(
        self, node: ast.AST, code: str, message: str
    ) -> Violation:
        """Build a violation anchored at *node*'s location."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule:
    """Base class every checker derives from.

    Subclasses set ``code`` (e.g. ``"DET001"``), ``summary`` (one line,
    shown by ``--list-rules``) and ``scope`` (:data:`FILE_SCOPE`,
    :data:`PROJECT_SCOPE` or :data:`PROGRAM_SCOPE`), then implement
    :meth:`check` (file scope), :meth:`check_project` (project scope) or
    :meth:`check_program` (whole-program scope).
    """

    code: str = ""
    summary: str = ""
    scope: str = FILE_SCOPE

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Yield violations for one module (file-scope rules)."""
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Violation]:
        """Yield violations across all modules (project-scope rules)."""
        return iter(())

    def check_program(self, program: "ProgramModel") -> Iterator[Violation]:
        """Yield violations over the whole-program model (program scope)."""
        return iter(())

    def is_enabled(self, config: "AnalysisConfig") -> bool:
        """Whether this rule can produce findings under *config*.

        Config-gated rules (ASY101, DEAD101) override this; a rule that is
        selected but inert cannot verify its suppressions, so the orphan
        check must leave them alone.
        """
        return True


def call_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a call target, e.g. ``np.random.choice`` — or None.

    Only resolves plain ``Name``/``Attribute`` chains; anything dynamic
    (subscripts, calls) yields None.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """Last segment of a call target (``pool.imap_unordered`` → ``imap_unordered``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
