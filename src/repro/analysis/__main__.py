"""CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error —
the same contract as the test suite, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.config import AnalysisConfig, AnalysisConfigError, load_config
from repro.analysis.fixes import fix_orphan_suppressions
from repro.analysis.iprules import async_readiness_map
from repro.analysis.registry import AnalysisError, get_rule, rule_codes
from repro.analysis.reporters import REPORTERS
from repro.analysis.walker import analyze_paths, build_program

#: Default directory for the on-disk per-function summary cache.
DEFAULT_SUMMARY_CACHE = ".repro-analysis-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & invariant linter: per-file AST rules plus "
            "whole-program call-graph/taint rules guarding the repo's "
            "reproducibility invariants (seed provenance, cache purity, "
            "async readiness, worker-safe state, dead code)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for per-file analysis (default: CPU count; "
        "1 forces serial)",
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        default=None,
        help="analysis.toml to load (default: probe the working directory)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="run file-scope rules only on git-modified files (project and "
        "whole-program rules still cover the full tree via the summary "
        "cache); the pre-commit hook uses this",
    )
    parser.add_argument(
        "--summary-cache",
        metavar="DIR",
        default=DEFAULT_SUMMARY_CACHE,
        help=f"on-disk summary cache directory (default: {DEFAULT_SUMMARY_CACHE})",
    )
    parser.add_argument(
        "--no-summary-cache",
        action="store_true",
        help="disable the on-disk summary cache (every run is cold)",
    )
    parser.add_argument(
        "--async-map",
        action="store_true",
        help="print the per-module async-readiness map (which modules reach "
        "blocking calls) and exit",
    )
    parser.add_argument(
        "--fix-orphans",
        action="store_true",
        help="delete SUP001-orphaned '# repro: allow[...]' comments in place, "
        "then re-run the analysis",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix-orphans: report the edits without touching any file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _load_cli_config(path: Optional[str]) -> Optional[AnalysisConfig]:
    if path is None:
        return None  # analyze_paths probes the working directory
    probe = Path(path)
    if not probe.is_file():
        raise AnalysisConfigError(f"no such config file: {path}")
    return load_config(probe)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in rule_codes():
            print(f"{code}  {get_rule(code).summary}")
        print("SUP001  orphan suppression: allow[...] comment with no matching violation")
        print("SUP002  suppression without a one-line justification")
        return 0
    select = (
        [code.strip().upper() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    cache_dir = (
        None if args.no_summary_cache else Path(args.summary_cache)
    )
    try:
        config = _load_cli_config(args.config)
        if args.async_map:
            program = build_program(
                args.paths, config=config, summary_cache_dir=cache_dir
            )
            for module_name, entry in async_readiness_map(program).items():
                sites = entry["blocking_sites"]
                assert isinstance(sites, list)
                status = "ready" if entry["ready"] else f"{len(sites)} blocking"
                print(f"{module_name}: {status}")
                for site in sites[:5]:
                    print(f"  {site}")
                if len(sites) > 5:
                    print(f"  … and {len(sites) - 5} more")
            return 0
        report = analyze_paths(
            args.paths,
            select=select,
            jobs=args.jobs,
            config=config,
            summary_cache_dir=cache_dir,
            changed_only=args.changed_only,
        )
        if args.fix_orphans:
            for message in fix_orphan_suppressions(
                report.orphans, dry_run=args.dry_run
            ):
                print(message)
            if not args.dry_run and report.orphans:
                # The tree changed under us: re-run for an honest report.
                report = analyze_paths(
                    args.paths,
                    select=select,
                    jobs=args.jobs,
                    config=config,
                    summary_cache_dir=cache_dir,
                    changed_only=args.changed_only,
                )
    except (AnalysisError, AnalysisConfigError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    REPORTERS[args.format](report, sys.stdout)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
