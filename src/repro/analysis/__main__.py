"""CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error —
the same contract as the test suite, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.registry import AnalysisError, get_rule, rule_codes
from repro.analysis.reporters import REPORTERS
from repro.analysis.walker import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & invariant linter: AST rules guarding the repo's "
            "reproducibility invariants (seeded entropy, ordered iteration, "
            "pickle-safe dispatch, cache-signature completeness)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for per-file analysis (default: CPU count; "
        "1 forces serial)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in rule_codes():
            print(f"{code}  {get_rule(code).summary}")
        print("SUP001  orphan suppression: allow[...] comment with no matching violation")
        print("SUP002  suppression without a one-line justification")
        return 0
    select = (
        [code.strip().upper() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    try:
        report = analyze_paths(args.paths, select=select, jobs=args.jobs)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    REPORTERS[args.format](report, sys.stdout)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
