"""Inline suppressions: ``# repro: allow[RULE] — justification``.

A suppression silences a rule on the line it sits on; a comment standing
alone on its own line silences the *next* source line (so long violating
lines can keep the justification above them).  Every suppression must carry
a one-line justification after the bracket — the point of a suppression is
to record *why* the invariant provably holds here, not to make the linter
quiet.  The checker itself enforces that:

* ``SUP001`` — an *orphan* suppression: no violation of the named rule was
  produced on the covered line, so the comment is stale (the code was fixed,
  the rule changed, or the code was never violating).  Orphans rot into
  misleading documentation and can mask a future real violation, so they
  fail the build exactly like the violation they once silenced.
* ``SUP002`` — a suppression without a justification.

Multiple rules can share one comment: ``# repro: allow[DET001,DET002] — ...``.
The meta codes SUP001/SUP002 are themselves not suppressible.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.analysis.base import Violation

#: Matches the suppression comment anywhere in a line.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]+)\]\s*(?P<rest>.*)$"
)

#: Leading separators allowed between the bracket and the justification.
_JUSTIFICATION_PREFIX_RE = re.compile(r"^[-—–:\s]+")

#: Codes that can never be suppressed (the suppression checker itself).
UNSUPPRESSIBLE = frozenset({"SUP001", "SUP002"})


@dataclass
class Suppression:
    """One parsed suppression comment."""

    path: str
    line: int           #: line the comment sits on (1-based)
    target_line: int    #: line whose violations it silences
    codes: Tuple[str, ...]
    justification: str
    used: Dict[str, bool] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "target_line": self.target_line,
            "codes": list(self.codes),
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Suppression":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            target_line=int(data["target_line"]),  # type: ignore[arg-type]
            codes=tuple(str(code) for code in data["codes"]),  # type: ignore[union-attr]
            justification=str(data["justification"]),
        )


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """(line, column, text) of every real comment token in *source*.

    Tokenizing (rather than regex over raw lines) keeps suppression examples
    inside docstrings and string literals from being treated as live
    suppressions.
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparsable files are reported as PARSE001 by the walker
    return comments


def parse_suppressions(path: str, lines: List[str]) -> List[Suppression]:
    """Extract every suppression comment from *lines* (1-based line numbers)."""
    found: List[Suppression] = []
    for line, column, text in _comment_tokens("\n".join(lines)):
        match = SUPPRESSION_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        justification = _JUSTIFICATION_PREFIX_RE.sub("", match.group("rest")).strip()
        # A comment on its own line covers the next line; a trailing comment
        # covers its own line.
        comment_only = lines[line - 1][:column].strip() == ""
        target_line = line + 1 if comment_only else line
        found.append(
            Suppression(
                path=path,
                line=line,
                target_line=target_line,
                codes=codes,
                justification=justification,
                used={code: False for code in codes},
            )
        )
    return found


def apply_suppressions(
    violations: Iterable[Violation], suppressions: Iterable[Suppression]
) -> Tuple[List[Violation], List[Violation]]:
    """Filter suppressed violations and report suppression misuse.

    Returns ``(kept, meta)``: the violations that survive, and the SUP001
    (orphan) / SUP002 (missing justification) findings for the suppression
    comments themselves.
    """
    by_target: Dict[Tuple[str, int], List[Suppression]] = {}
    all_suppressions: List[Suppression] = []
    for suppression in suppressions:
        all_suppressions.append(suppression)
        by_target.setdefault(
            (suppression.path, suppression.target_line), []
        ).append(suppression)

    kept: List[Violation] = []
    for violation in violations:
        matched = False
        if violation.code not in UNSUPPRESSIBLE:
            for suppression in by_target.get((violation.path, violation.line), ()):
                if violation.code in suppression.codes:
                    suppression.used[violation.code] = True
                    matched = True
        if not matched:
            kept.append(violation)

    meta: List[Violation] = []
    for suppression in all_suppressions:
        if not suppression.justification:
            meta.append(
                Violation(
                    path=suppression.path,
                    line=suppression.line,
                    column=1,
                    code="SUP002",
                    message=(
                        "suppression is missing a justification; write "
                        "'# repro: allow[CODE] — why this is safe'"
                    ),
                )
            )
        for code in suppression.codes:
            if not suppression.used.get(code, False):
                meta.append(
                    Violation(
                        path=suppression.path,
                        line=suppression.line,
                        column=1,
                        code="SUP001",
                        message=(
                            f"orphan suppression: no {code} violation on line "
                            f"{suppression.target_line}; remove the stale "
                            f"allow[{code}]"
                        ),
                    )
                )
    return kept, meta
