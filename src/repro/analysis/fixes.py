"""Mechanical fixes for findings the linter can repair itself.

Currently one fixer: deleting SUP001-orphaned ``# repro: allow[...]``
comments in place (``--fix-orphans``).  An orphan is a suppression whose
rule produced no violation on the covered line — stale documentation that
can mask a future real violation.  The fixer removes only the orphaned
codes: a comment shared by a still-live code keeps the live code (and its
justification); a comment whose codes are all orphaned is deleted, and the
whole line goes with it when the comment was the only thing on it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.suppressions import SUPPRESSION_RE
from repro.analysis.walker import OrphanSuppression


def _rewrite_line(line: str, orphan_codes: Set[str]) -> Tuple[str, bool]:
    """Drop *orphan_codes* from the suppression comment on *line*.

    Returns ``(new_line, drop_line)``; ``drop_line`` is True when the line
    held nothing but the now-deleted comment.
    """
    match = SUPPRESSION_RE.search(line)
    if match is None:
        return line, False
    codes = [
        code.strip().upper()
        for code in match.group("codes").split(",")
        if code.strip()
    ]
    remaining = [code for code in codes if code not in orphan_codes]
    prefix = line[: match.start()].rstrip()
    if remaining:
        rebuilt = line[:match.start()] + line[match.start():].replace(
            match.group("codes"), ",".join(remaining), 1
        )
        return rebuilt, False
    if prefix:
        return prefix, False
    return "", True


def fix_orphan_suppressions(
    orphans: Sequence[OrphanSuppression], dry_run: bool = False
) -> List[str]:
    """Delete orphaned allow-codes in place; return one message per edit.

    With ``dry_run`` the files are left untouched and every message is
    prefixed ``would``; otherwise each file is rewritten once with all its
    orphan edits applied.
    """
    by_file: Dict[str, Dict[int, Set[str]]] = {}
    for orphan in orphans:
        by_file.setdefault(orphan.path, {}).setdefault(orphan.line, set()).add(
            orphan.code
        )
    messages: List[str] = []
    verb = "would remove" if dry_run else "removed"
    for path in sorted(by_file):
        target = Path(path)
        text = target.read_text(encoding="utf-8")
        lines = text.splitlines()
        trailing_newline = text.endswith("\n")
        dropped: List[int] = []
        for line_number in sorted(by_file[path]):
            index = line_number - 1
            if index >= len(lines):
                continue
            codes = by_file[path][line_number]
            new_line, drop = _rewrite_line(lines[index], codes)
            listed = ",".join(sorted(codes))
            messages.append(
                f"{path}:{line_number}: {verb} stale allow[{listed}]"
            )
            if drop:
                dropped.append(index)
            else:
                lines[index] = new_line
        if dry_run:
            continue
        for index in sorted(dropped, reverse=True):
            del lines[index]
        rebuilt = "\n".join(lines)
        if trailing_newline and rebuilt:
            rebuilt += "\n"
        target.write_text(rebuilt, encoding="utf-8")
    return messages
