"""Per-function dataflow summaries — the unit the whole-program rules consume.

One :class:`ModuleSummary` captures everything the interprocedural stage
needs to know about a file *without* re-reading it: every call site with the
derivation of each argument (which enclosing parameters and which producing
calls the value may flow from), every RNG construction with the provenance
of its seed expression, every ambient read (env vars, wall clock,
filesystem, host identity), every blocking call, every write to
module-level state, and every cache-store site.  The extraction is a small
forward abstract interpretation per function: names map to *may-derive*
sets of parameters and call indices, iterated to a fixpoint so loops and
re-assignments over-approximate instead of missing flows.

Summaries are pure data (plain tuples of frozen dataclasses) so they
serialize to JSON; :class:`SummaryCache` keys them by a content hash of the
source, which makes warm whole-program runs re-summarize only changed
files.
"""

from __future__ import annotations

import ast
import hashlib
import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.base import call_name, terminal_name

LOGGER = logging.getLogger(__name__)

#: Bump when the summary data model changes; stale cache files are ignored.
SUMMARY_SCHEMA_VERSION = 1

#: Synthetic function name holding a module's import-time statements.
MODULE_BODY = "<module>"

#: Terminal names of RNG constructors (numpy and stdlib).
RNG_CONSTRUCTOR_TERMINALS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "Random",
        "SystemRandom",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Canonical prefixes an RNG constructor must live under to count.
_RNG_MODULE_PREFIXES = ("numpy.random", "random", "numpy")

#: Canonical dotted names whose *call* reads ambient process state.
_AMBIENT_CALLS: Mapping[str, str] = {
    "os.environ.get": "env",
    "os.environb.get": "env",
    "os.getenv": "env",
    "os.getenvb": "env",
    "time.time": "clock",
    "time.time_ns": "clock",
    "time.monotonic": "clock",
    "time.monotonic_ns": "clock",
    "time.perf_counter": "clock",
    "time.perf_counter_ns": "clock",
    "time.process_time": "clock",
    "time.process_time_ns": "clock",
    "time.localtime": "clock",
    "time.gmtime": "clock",
    "time.ctime": "clock",
    "datetime.datetime.now": "clock",
    "datetime.datetime.utcnow": "clock",
    "datetime.datetime.today": "clock",
    "datetime.date.today": "clock",
    "os.listdir": "filesystem",
    "os.scandir": "filesystem",
    "os.stat": "filesystem",
    "os.getcwd": "filesystem",
    "glob.glob": "filesystem",
    "glob.iglob": "filesystem",
    "os.getpid": "process",
    "os.getppid": "process",
    "os.cpu_count": "process",
    "os.sched_getaffinity": "process",
    "os.uname": "process",
    "platform.node": "process",
    "platform.platform": "process",
    "socket.gethostname": "process",
    "getpass.getuser": "process",
}

#: Canonical dotted names whose bare *load* reads ambient state.
_AMBIENT_NAME_READS: Mapping[str, str] = {
    "os.environ": "env",
    "os.environb": "env",
    "sys.argv": "process",
}

#: Method terminals that read filesystem state regardless of receiver.
_AMBIENT_FS_METHOD_TERMINALS = frozenset(
    {"read_text", "read_bytes", "iterdir", "glob", "rglob"}
)

#: Canonical dotted names that always block (exact match).
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "input",
        "open",
        "socket.create_connection",
        "socket.socket",
        "select.select",
        "urllib.request.urlopen",
    }
)

#: Canonical prefixes that always block.
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "http.client.", "shutil.")

#: Method terminals that block on any receiver (sync file I/O on path-likes).
_BLOCKING_METHOD_TERMINALS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Method terminals that block on a pool/queue-like receiver.
_BLOCKING_POOL_TERMINALS = frozenset(
    {"join", "map", "starmap", "apply", "get", "acquire", "wait", "result"}
)

#: Pool-submission method terminals (callable escapes to another process).
_POOL_SUBMIT_TERMINALS = frozenset(
    {
        "submit",
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)

#: Keyword arguments that carry a callable into another process.
_CALLABLE_KEYWORDS = frozenset({"target", "initializer", "func"})

#: Constructor terminals that spawn workers (callable keywords count here).
_SPAWN_CONSTRUCTOR_TERMINALS = frozenset(
    {"Process", "Pool", "Thread", "ProcessPoolExecutor", "ThreadPoolExecutor", "Timer"}
)

#: Receiver-name fragments that mark a pool/process/queue-like object.
_POOLISH_FRAGMENTS = ("pool", "executor", "worker", "proc", "thread", "queue", "future")

#: Cache-store method terminals.
_STORE_TERMINALS = frozenset({"store", "store_error", "put"})

#: Mutating method terminals on module-level containers (MP101).
_MUTATING_TERMINALS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)


@dataclass(frozen=True)
class ArgFlow:
    """Derivation of one expression inside a function body."""

    #: Enclosing-function parameters the value may derive from.
    params: Tuple[str, ...] = ()
    #: Indices (into the function's call list) whose results may flow in.
    calls: Tuple[int, ...] = ()
    #: Free dotted names (module globals, captures) that may flow in.
    names: Tuple[str, ...] = ()
    #: True when the expression is a literal constant tree.
    constant: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "params": list(self.params),
            "calls": list(self.calls),
            "names": list(self.names),
            "constant": self.constant,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ArgFlow":
        return cls(
            params=tuple(str(p) for p in data["params"]),  # type: ignore[union-attr]
            calls=tuple(int(c) for c in data["calls"]),  # type: ignore[union-attr]
            names=tuple(str(n) for n in data["names"]),  # type: ignore[union-attr]
            constant=bool(data["constant"]),
        )


@dataclass(frozen=True)
class CallSite:
    """One call expression: its (canonicalized) target and argument flows."""

    index: int
    target: str            #: canonical dotted target ("" when dynamic)
    line: int
    column: int
    args: Tuple[ArgFlow, ...] = ()
    keywords: Tuple[Tuple[str, ArgFlow], ...] = ()
    #: Resolved candidate callees when the target is a dispatch-table local.
    candidates: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "target": self.target,
            "line": self.line,
            "column": self.column,
            "args": [arg.to_dict() for arg in self.args],
            "keywords": [[name, arg.to_dict()] for name, arg in self.keywords],
            "candidates": list(self.candidates),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CallSite":
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            target=str(data["target"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            args=tuple(
                ArgFlow.from_dict(arg) for arg in data["args"]  # type: ignore[union-attr]
            ),
            keywords=tuple(
                (str(pair[0]), ArgFlow.from_dict(pair[1]))
                for pair in data["keywords"]  # type: ignore[union-attr]
            ),
            candidates=tuple(str(c) for c in data["candidates"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class RngSite:
    """One RNG construction and the provenance of its seed expression."""

    constructor: str
    line: int
    column: int
    seed: ArgFlow
    #: ``derived`` (flows from parameters), ``constant``, ``opaque``
    #: (ambient/global/call-derived with no parameter), or ``missing``.
    kind: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "constructor": self.constructor,
            "line": self.line,
            "column": self.column,
            "seed": self.seed.to_dict(),
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RngSite":
        return cls(
            constructor=str(data["constructor"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            seed=ArgFlow.from_dict(data["seed"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
        )


@dataclass(frozen=True)
class SiteFact:
    """A classified source location (ambient read / blocking call / write)."""

    name: str
    kind: str
    line: int
    column: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "line": self.line,
            "column": self.column,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SiteFact":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class StoreSite:
    """A value flowing into a cache (``cache.store(...)`` or ``self._x[k] =``)."""

    receiver: str
    line: int
    column: int
    value: ArgFlow

    def to_dict(self) -> Dict[str, object]:
        return {
            "receiver": self.receiver,
            "line": self.line,
            "column": self.column,
            "value": self.value.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StoreSite":
        return cls(
            receiver=str(data["receiver"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            value=ArgFlow.from_dict(data["value"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the interprocedural stage knows about one function."""

    qualname: str          #: ``f``, ``C.m``, ``outer.inner`` or ``<module>``
    name: str
    line: int
    params: Tuple[str, ...] = ()
    class_name: Optional[str] = None
    public: bool = False
    calls: Tuple[CallSite, ...] = ()
    #: (canonical callable, line, column) handed to a pool/process.
    submitted: Tuple[Tuple[str, int, int], ...] = ()
    rng_sites: Tuple[RngSite, ...] = ()
    ambient_reads: Tuple[SiteFact, ...] = ()
    blocking_calls: Tuple[SiteFact, ...] = ()
    global_writes: Tuple[SiteFact, ...] = ()
    store_sites: Tuple[StoreSite, ...] = ()
    references: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "class_name": self.class_name,
            "public": self.public,
            "calls": [site.to_dict() for site in self.calls],
            "submitted": [list(entry) for entry in self.submitted],
            "rng_sites": [site.to_dict() for site in self.rng_sites],
            "ambient_reads": [site.to_dict() for site in self.ambient_reads],
            "blocking_calls": [site.to_dict() for site in self.blocking_calls],
            "global_writes": [site.to_dict() for site in self.global_writes],
            "store_sites": [site.to_dict() for site in self.store_sites],
            "references": list(self.references),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FunctionSummary":
        raw_class = data["class_name"]
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            params=tuple(str(p) for p in data["params"]),  # type: ignore[union-attr]
            class_name=None if raw_class is None else str(raw_class),
            public=bool(data["public"]),
            calls=tuple(
                CallSite.from_dict(site) for site in data["calls"]  # type: ignore[union-attr]
            ),
            submitted=tuple(
                (str(entry[0]), int(entry[1]), int(entry[2]))
                for entry in data["submitted"]  # type: ignore[union-attr]
            ),
            rng_sites=tuple(
                RngSite.from_dict(site) for site in data["rng_sites"]  # type: ignore[union-attr]
            ),
            ambient_reads=tuple(
                SiteFact.from_dict(site)
                for site in data["ambient_reads"]  # type: ignore[union-attr]
            ),
            blocking_calls=tuple(
                SiteFact.from_dict(site)
                for site in data["blocking_calls"]  # type: ignore[union-attr]
            ),
            global_writes=tuple(
                SiteFact.from_dict(site)
                for site in data["global_writes"]  # type: ignore[union-attr]
            ),
            store_sites=tuple(
                StoreSite.from_dict(site)
                for site in data["store_sites"]  # type: ignore[union-attr]
            ),
            references=tuple(str(n) for n in data["references"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class: canonical base names and the methods it defines."""

    name: str
    line: int
    bases: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            bases=tuple(str(b) for b in data["bases"]),  # type: ignore[union-attr]
            methods=tuple(str(m) for m in data["methods"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class ModuleSummary:
    """The per-file unit of the whole-program model."""

    module: str
    path: str
    sha: str
    imports: Tuple[Tuple[str, str], ...] = ()
    classes: Tuple[ClassSummary, ...] = ()
    #: Module-level dicts/tuples whose values are plain callables.
    callable_tables: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    functions: Tuple[FunctionSummary, ...] = ()
    module_level_names: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "sha": self.sha,
            "imports": [list(pair) for pair in self.imports],
            "classes": [cls_.to_dict() for cls_ in self.classes],
            "callable_tables": [
                [name, list(members)] for name, members in self.callable_tables
            ],
            "functions": [fn.to_dict() for fn in self.functions],
            "module_level_names": list(self.module_level_names),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            module=str(data["module"]),
            path=str(data["path"]),
            sha=str(data["sha"]),
            imports=tuple(
                (str(pair[0]), str(pair[1]))
                for pair in data["imports"]  # type: ignore[union-attr]
            ),
            classes=tuple(
                ClassSummary.from_dict(entry)
                for entry in data["classes"]  # type: ignore[union-attr]
            ),
            callable_tables=tuple(
                (str(entry[0]), tuple(str(m) for m in entry[1]))
                for entry in data["callable_tables"]  # type: ignore[union-attr]
            ),
            functions=tuple(
                FunctionSummary.from_dict(entry)
                for entry in data["functions"]  # type: ignore[union-attr]
            ),
            module_level_names=tuple(
                str(n) for n in data["module_level_names"]  # type: ignore[union-attr]
            ),
        )


def source_sha(source: str) -> str:
    """Content hash keying the summary cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name derived by walking up ``__init__.py`` ancestors."""
    resolved = path.resolve()
    parts: List[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


class _ImportMap:
    """Local-name → canonical dotted-name resolution for one module."""

    def __init__(self, module_name: str, is_package: bool) -> None:
        self.aliases: Dict[str, str] = {}
        self.module_aliases: Dict[str, str] = {}
        parts = module_name.split(".") if module_name else []
        self._package_parts = parts if is_package else parts[:-1]

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.aliases[alias.asname] = alias.name
                self.module_aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".", 1)[0]
                self.aliases[head] = head
                self.module_aliases[head] = head

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level:
            keep = len(self._package_parts) - (node.level - 1)
            base_parts = self._package_parts[: max(keep, 0)]
            base = ".".join(base_parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def canonical(self, dotted: str) -> str:
        head, sep, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if sep else target

    def items(self) -> List[Tuple[str, str]]:
        return sorted(self.aliases.items())


class _FlowSet:
    """Mutable accumulator behind :class:`ArgFlow` (set-union semantics)."""

    __slots__ = ("params", "calls", "names", "constant")

    def __init__(self) -> None:
        self.params: Set[str] = set()
        self.calls: Set[int] = set()
        self.names: Set[str] = set()
        self.constant = False

    def merge(self, other: "_FlowSet") -> bool:
        before = (len(self.params), len(self.calls), len(self.names), self.constant)
        self.params |= other.params
        self.calls |= other.calls
        self.names |= other.names
        self.constant = self.constant or other.constant
        return before != (
            len(self.params),
            len(self.calls),
            len(self.names),
            self.constant,
        )

    def freeze(self) -> ArgFlow:
        return ArgFlow(
            params=tuple(sorted(self.params)),
            calls=tuple(sorted(self.calls)),
            names=tuple(sorted(self.names)),
            constant=self.constant,
        )


def _dotted_path(node: ast.AST) -> Optional[str]:
    """Like :func:`call_name` but also accepts a bare ``Name``."""
    return call_name(node)


def _iter_scope(nodes: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class defs."""
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            for name in _assigned_names(element):
                yield name
    elif isinstance(target, ast.Starred):
        for name in _assigned_names(target.value):
            yield name


def _looks_poolish(receiver: str) -> bool:
    lowered = receiver.lower()
    return any(fragment in lowered for fragment in _POOLISH_FRAGMENTS)


def _constant_mode_is_write_only(call: ast.Call) -> bool:
    """True for ``open(path, "w")``-style calls (a write, not an ambient read)."""
    mode: Optional[str] = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            mode = call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                mode = keyword.value.value
    if mode is None:
        return False
    return any(flag in mode for flag in "wax") and "+" not in mode


class _FunctionSummarizer:
    """Extract one :class:`FunctionSummary` via fixpoint name derivation."""

    def __init__(
        self,
        body: Sequence[ast.stmt],
        params: Sequence[str],
        imports: _ImportMap,
        module_level_names: FrozenSet[str],
        tables: Mapping[str, Tuple[str, ...]],
        class_name: Optional[str],
    ) -> None:
        self._body = body
        self._params = tuple(params)
        self._imports = imports
        self._module_level_names = module_level_names
        self._tables = tables
        self._class_name = class_name
        self._env: Dict[str, _FlowSet] = {}
        self._local_types: Dict[str, str] = {}
        self._local_callables: Dict[str, Tuple[str, ...]] = {}
        self._local_names: Set[str] = set(params)
        self._global_decls: Set[str] = set()
        self._call_index: Dict[int, int] = {}
        self._calls_in_order: List[ast.Call] = []
        for param in params:
            flow = _FlowSet()
            flow.params.add(param)
            self._env[param] = flow

    # -- derivation ---------------------------------------------------------

    def _lookup(self, dotted: str) -> Optional[_FlowSet]:
        return self._env.get(dotted)

    def _derive(self, node: Optional[ast.AST]) -> _FlowSet:
        flow = _FlowSet()
        if node is None:
            return flow
        if isinstance(node, ast.Constant):
            flow.constant = True
            return flow
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_path(node)
            if dotted is not None:
                known = self._lookup(dotted)
                if known is not None:
                    flow.merge(known)
                    return flow
                head = dotted.split(".", 1)[0]
                base = self._lookup(head)
                if base is not None:
                    flow.merge(base)
                    return flow
                flow.names.add(self._imports.canonical(dotted))
                return flow
            flow.merge(self._derive(getattr(node, "value", None)))
            return flow
        if isinstance(node, ast.Call):
            index = self._call_index.get(id(node))
            if index is not None:
                flow.calls.add(index)
            for arg in node.args:
                flow.merge(self._derive(arg))
            for keyword in node.keywords:
                flow.merge(self._derive(keyword.value))
            if isinstance(node.func, ast.Attribute):
                flow.merge(self._derive(node.func.value))
            return flow
        if isinstance(node, ast.Subscript):
            flow.merge(self._derive(node.value))
            flow.merge(self._derive(node.slice))
            return flow
        if isinstance(node, ast.BinOp):
            flow.merge(self._derive(node.left))
            flow.merge(self._derive(node.right))
            return flow
        if isinstance(node, ast.UnaryOp):
            flow.merge(self._derive(node.operand))
            return flow
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                flow.merge(self._derive(value))
            return flow
        if isinstance(node, ast.Compare):
            flow.merge(self._derive(node.left))
            for comparator in node.comparators:
                flow.merge(self._derive(comparator))
            return flow
        if isinstance(node, ast.IfExp):
            flow.merge(self._derive(node.body))
            flow.merge(self._derive(node.orelse))
            return flow
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            flow.constant = True
            for element in node.elts:
                flow.merge(self._derive(element))
            return flow
        if isinstance(node, ast.Dict):
            flow.constant = True
            for key in node.keys:
                flow.merge(self._derive(key))
            for value in node.values:
                flow.merge(self._derive(value))
            return flow
        if isinstance(node, ast.Starred):
            flow.merge(self._derive(node.value))
            return flow
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                flow.merge(self._derive(value))
            return flow
        if isinstance(node, ast.FormattedValue):
            flow.merge(self._derive(node.value))
            return flow
        if isinstance(node, (ast.Await, ast.NamedExpr, ast.Expr)):
            flow.merge(self._derive(node.value))
            return flow
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            flow.merge(self._derive(node.elt))
            for generator in node.generators:
                flow.merge(self._derive(generator.iter))
            return flow
        if isinstance(node, ast.DictComp):
            flow.merge(self._derive(node.key))
            flow.merge(self._derive(node.value))
            for generator in node.generators:
                flow.merge(self._derive(generator.iter))
            return flow
        if isinstance(node, ast.Slice):
            flow.merge(self._derive(node.lower))
            flow.merge(self._derive(node.upper))
            flow.merge(self._derive(node.step))
            return flow
        return flow

    def _bind(self, dotted: str, flow: _FlowSet) -> bool:
        existing = self._env.get(dotted)
        if existing is None:
            self._env[dotted] = flow_copy = _FlowSet()
            flow_copy.merge(flow)
            return bool(flow.params or flow.calls or flow.names or flow.constant)
        return existing.merge(flow)

    def _bind_target(self, target: ast.AST, flow: _FlowSet) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            self._local_names.add(target.id)
            changed = self._bind(target.id, flow) or changed
        elif isinstance(target, ast.Attribute):
            dotted = _dotted_path(target)
            if dotted is not None:
                changed = self._bind(dotted, flow) or changed
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                changed = self._bind_target(element, flow) or changed
        elif isinstance(target, ast.Starred):
            changed = self._bind_target(target.value, flow) or changed
        return changed

    def _note_table_iteration(self, target: ast.AST, iter_node: ast.AST) -> None:
        """``for name, fn in TABLE.items()`` binds fn to the table's members."""
        if not isinstance(iter_node, ast.Call):
            return
        func = iter_node.func
        if not isinstance(func, ast.Attribute) or func.attr not in ("items", "values"):
            return
        base = _dotted_path(func.value)
        if base is None:
            return
        members = self._tables.get(base)
        if members is None:
            return
        bound: Optional[str] = None
        if func.attr == "values" and isinstance(target, ast.Name):
            bound = target.id
        elif (
            func.attr == "items"
            and isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            bound = target.elts[1].id
        if bound is not None:
            self._local_callables[bound] = members

    def _note_local_type(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
            return
        dotted = _dotted_path(value.func)
        if dotted is None:
            return
        canonical = self._imports.canonical(dotted)
        if canonical and canonical[0].isalpha():
            self._local_types[target.id] = canonical

    def annotate_param_type(self, param: str, annotation: Optional[ast.AST]) -> None:
        if annotation is None:
            return
        dotted = _dotted_path(annotation)
        if dotted is not None:
            self._local_types[param] = self._imports.canonical(dotted)

    # -- passes -------------------------------------------------------------

    def _collect_calls(self) -> None:
        calls = [
            node for node in _iter_scope(self._body) if isinstance(node, ast.Call)
        ]
        calls.sort(key=lambda node: (node.lineno, node.col_offset))
        for index, node in enumerate(calls):
            self._call_index[id(node)] = index
        self._calls_in_order = calls

    def _collect_bindings(self) -> None:
        for node in _iter_scope(self._body):
            if isinstance(node, ast.Global):
                self._global_decls.update(node.names)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._note_table_iteration(node.target, node.iter)
                for name in _assigned_names(node.target):
                    self._local_names.add(name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._note_local_type(target, node.value)
                    for name in _assigned_names(target):
                        self._local_names.add(name)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    self._local_names.add(node.target.id)
                    if node.value is not None:
                        self._note_local_type(node.target, node.value)
                    else:
                        self.annotate_param_type(node.target.id, node.annotation)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name in _assigned_names(item.optional_vars):
                            self._local_names.add(name)
            elif isinstance(node, ast.ExceptHandler):
                if node.name:
                    self._local_names.add(node.name)
            elif isinstance(node, ast.comprehension):
                self._note_table_iteration(node.target, node.iter)
                for name in _assigned_names(node.target):
                    self._local_names.add(name)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self._local_names.add(node.target.id)

    def _propagate(self) -> None:
        for _ in range(4):
            changed = False
            for node in _iter_scope(self._body):
                if isinstance(node, ast.Assign):
                    flow = self._derive(node.value)
                    for target in node.targets:
                        changed = self._bind_target(target, flow) or changed
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    flow = self._derive(node.value)
                    changed = self._bind_target(node.target, flow) or changed
                elif isinstance(node, ast.AugAssign):
                    flow = self._derive(node.value)
                    changed = self._bind_target(node.target, flow) or changed
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    flow = self._derive(node.iter)
                    changed = self._bind_target(node.target, flow) or changed
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None:
                            flow = self._derive(item.context_expr)
                            changed = (
                                self._bind_target(item.optional_vars, flow) or changed
                            )
                elif isinstance(node, ast.comprehension):
                    flow = self._derive(node.iter)
                    changed = self._bind_target(node.target, flow) or changed
                elif isinstance(node, ast.NamedExpr):
                    flow = self._derive(node.value)
                    changed = self._bind_target(node.target, flow) or changed
            if not changed:
                break

    # -- classification -----------------------------------------------------

    def _call_target(self, node: ast.Call) -> Tuple[str, Tuple[str, ...]]:
        func = node.func
        if isinstance(func, ast.Subscript):
            base = _dotted_path(func.value)
            if base is not None:
                members = self._tables.get(base)
                if members is not None:
                    return f"{base}[]", members
                return f"{self._imports.canonical(base)}[]", ()
            return "", ()
        dotted = _dotted_path(func)
        if dotted is None:
            return "", ()
        head, sep, rest = dotted.partition(".")
        if head == "self":
            return dotted, ()
        if not sep and dotted in self._local_callables:
            return dotted, self._local_callables[dotted]
        if sep and head in self._local_types:
            return f"{self._local_types[head]}.{rest}", ()
        return self._imports.canonical(dotted), ()

    def _seed_kind(self, flow: ArgFlow, present: bool) -> str:
        if not present:
            return "missing"
        if flow.params:
            return "derived"
        if flow.calls or flow.names:
            return "opaque"
        return "constant"

    def _classify_call(
        self,
        node: ast.Call,
        site: CallSite,
        rng_sites: List[RngSite],
        ambient: List[SiteFact],
        blocking: List[SiteFact],
        submitted: List[Tuple[str, int, int]],
        stores: List[StoreSite],
        global_writes: List[SiteFact],
    ) -> None:
        target = site.target
        terminal = target.rsplit(".", 1)[-1] if target else ""
        receiver = target.rsplit(".", 1)[0] if "." in target else ""

        # RNG constructions (SEED101).  A bare target only counts when it is
        # not shadowed by a same-named local definition in this module.
        if terminal in RNG_CONSTRUCTOR_TERMINALS and (
            (target == terminal and target not in self._module_level_names)
            or any(
                target.startswith(prefix + ".") for prefix in _RNG_MODULE_PREFIXES
            )
        ):
            seed_node: Optional[ast.AST] = None
            if node.args:
                seed_node = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_node = keyword.value
            seed_flow = self._derive(seed_node).freeze()
            rng_sites.append(
                RngSite(
                    constructor=target,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    seed=seed_flow,
                    kind=self._seed_kind(seed_flow, seed_node is not None),
                )
            )

        # Ambient reads (PURE101).
        ambient_kind = _AMBIENT_CALLS.get(target)
        if ambient_kind is not None:
            ambient.append(
                SiteFact(target, ambient_kind, node.lineno, node.col_offset + 1)
            )
        elif target == "open" and not _constant_mode_is_write_only(node):
            ambient.append(
                SiteFact(target, "filesystem", node.lineno, node.col_offset + 1)
            )
        elif terminal == "open" and receiver and not _constant_mode_is_write_only(
            node
        ):
            ambient.append(
                SiteFact(target, "filesystem", node.lineno, node.col_offset + 1)
            )
        elif terminal in _AMBIENT_FS_METHOD_TERMINALS and receiver:
            ambient.append(
                SiteFact(target, "filesystem", node.lineno, node.col_offset + 1)
            )

        # Blocking calls (ASY101).
        blocking_hit = (
            target in _BLOCKING_EXACT
            or any(target.startswith(prefix) for prefix in _BLOCKING_PREFIXES)
            or (terminal in _BLOCKING_METHOD_TERMINALS and receiver)
            or (terminal == "open" and receiver)
            or (
                terminal in _BLOCKING_POOL_TERMINALS
                and receiver
                and _looks_poolish(receiver)
            )
        )
        if blocking_hit:
            blocking.append(
                SiteFact(target, "blocking", node.lineno, node.col_offset + 1)
            )

        # Pool submissions (MP101 roots).
        if terminal in _POOL_SUBMIT_TERMINALS and receiver and _looks_poolish(
            receiver
        ):
            if node.args:
                dotted = _dotted_path(node.args[0])
                if dotted is not None:
                    submitted.append(
                        (
                            self._imports.canonical(dotted),
                            node.lineno,
                            node.col_offset + 1,
                        )
                    )
        # ``Process(target=f)`` / ``Pool(initializer=f)`` / ``submit(func=f)``:
        # the keyword only counts on a process/pool-like constructor or method.
        spawnish = (
            terminal in _SPAWN_CONSTRUCTOR_TERMINALS
            or terminal in _POOL_SUBMIT_TERMINALS
            or (receiver != "" and _looks_poolish(receiver))
        )
        if spawnish:
            for keyword in node.keywords:
                if keyword.arg in _CALLABLE_KEYWORDS:
                    dotted = _dotted_path(keyword.value)
                    if dotted is not None:
                        submitted.append(
                            (
                                self._imports.canonical(dotted),
                                node.lineno,
                                node.col_offset + 1,
                            )
                        )

        # Cache stores (PURE101 sinks).
        if terminal in _STORE_TERMINALS and "cache" in receiver.lower():
            value_node: Optional[ast.AST] = None
            if node.args:
                value_node = node.args[-1]
            for keyword in node.keywords:
                if keyword.arg in ("value", "record", "entry", "result"):
                    value_node = keyword.value
            if value_node is not None:
                stores.append(
                    StoreSite(
                        receiver=target,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        value=self._derive(value_node).freeze(),
                    )
                )

        # Mutating method calls on module-level containers (MP101).  Checked
        # against the receiver *as written* — the type-inferred rewrite in
        # ``site.target`` must not turn a local instance's mutation into a
        # write of the module-level class name.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            _MUTATING_TERMINALS
        ):
            written = _dotted_path(node.func.value)
            if written is not None:
                head = written.split(".", 1)[0]
                # Imported names count: mutating a container imported from
                # another module is still a module-level write.
                if head not in self._local_names and (
                    head in self._module_level_names
                    or head in self._imports.aliases
                ):
                    global_writes.append(
                        SiteFact(
                            written, "mutate", node.lineno, node.col_offset + 1
                        )
                    )

    def _collect_global_writes(self, global_writes: List[SiteFact]) -> None:
        for node in _iter_scope(self._body):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in self._global_decls:
                        global_writes.append(
                            SiteFact(
                                target.id,
                                "assign",
                                node.lineno,
                                node.col_offset + 1,
                            )
                        )
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = target.value if isinstance(target, ast.Subscript) else target
                    dotted = _dotted_path(base)
                    if isinstance(target, ast.Attribute):
                        dotted = _dotted_path(target.value)
                    if dotted is None:
                        continue
                    head = dotted.split(".", 1)[0]
                    if head == "self" or head in self._local_names:
                        continue
                    if (
                        head in self._module_level_names
                        or head in self._imports.aliases
                    ):
                        global_writes.append(
                            SiteFact(
                                dotted,
                                "mutate",
                                node.lineno,
                                node.col_offset + 1,
                            )
                        )

    def _collect_subscript_stores(self, stores: List[StoreSite]) -> None:
        """``self._slot[key] = value`` inside a ``*Cache`` class is a store."""
        if not self._class_name or "cache" not in self._class_name.lower():
            return
        for node in _iter_scope(self._body):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                dotted = _dotted_path(target.value)
                if dotted is None or not dotted.startswith("self."):
                    continue
                stores.append(
                    StoreSite(
                        receiver=dotted,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        value=self._derive(node.value).freeze(),
                    )
                )

    def _collect_name_reads(self, ambient: List[SiteFact]) -> None:
        seen: Set[Tuple[str, int]] = set()
        for node in _iter_scope(self._body):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted_path(node)
            if dotted is None:
                continue
            canonical = self._imports.canonical(dotted)
            kind = _AMBIENT_NAME_READS.get(canonical)
            if kind is None or (kind, node.lineno) in seen:
                continue
            seen.add((kind, node.lineno))
            ambient.append(
                SiteFact(canonical, kind, node.lineno, node.col_offset + 1)
            )

    def summarize(
        self, qualname: str, name: str, line: int, references: Sequence[str]
    ) -> FunctionSummary:
        self._collect_calls()
        self._collect_bindings()
        self._propagate()

        call_sites: List[CallSite] = []
        rng_sites: List[RngSite] = []
        ambient: List[SiteFact] = []
        blocking: List[SiteFact] = []
        submitted: List[Tuple[str, int, int]] = []
        stores: List[StoreSite] = []
        global_writes: List[SiteFact] = []

        for node in self._calls_in_order:
            target, candidates = self._call_target(node)
            site = CallSite(
                index=self._call_index[id(node)],
                target=target,
                line=node.lineno,
                column=node.col_offset + 1,
                args=tuple(
                    self._derive(arg).freeze()
                    for arg in node.args
                    if not isinstance(arg, ast.Starred)
                ),
                keywords=tuple(
                    (keyword.arg, self._derive(keyword.value).freeze())
                    for keyword in node.keywords
                    if keyword.arg is not None
                ),
                candidates=candidates,
            )
            call_sites.append(site)
            self._classify_call(
                node, site, rng_sites, ambient, blocking, submitted, stores,
                global_writes,
            )

        self._collect_global_writes(global_writes)
        self._collect_subscript_stores(stores)
        self._collect_name_reads(ambient)

        dedup_ambient: Dict[Tuple[str, int, int], SiteFact] = {
            (fact.kind, fact.line, fact.column): fact for fact in ambient
        }
        return FunctionSummary(
            qualname=qualname,
            name=name,
            line=line,
            params=self._params,
            class_name=self._class_name,
            public=not name.startswith("_") and name != MODULE_BODY,
            calls=tuple(call_sites),
            submitted=tuple(sorted(set(submitted))),
            rng_sites=tuple(rng_sites),
            ambient_reads=tuple(
                dedup_ambient[key] for key in sorted(dedup_ambient)
            ),
            blocking_calls=tuple(blocking),
            global_writes=tuple(global_writes),
            store_sites=tuple(stores),
            references=tuple(sorted(set(references))),
        )


def _references_in(nodes: Sequence[ast.AST], skip_imports: bool) -> List[str]:
    """Terminal names referenced anywhere under *nodes* (liveness signal)."""
    names: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if skip_imports and isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
    return sorted(names)


def _function_params(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    params: List[str] = []
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        params.append(arg.arg)
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


def _callable_table_members(
    value: ast.AST, imports: _ImportMap
) -> Optional[Tuple[str, ...]]:
    """Members of a module-level callable dispatch table, if *value* is one."""
    candidates: List[ast.AST]
    if isinstance(value, ast.Dict):
        candidates = [entry for entry in value.values if entry is not None]
    elif isinstance(value, (ast.Tuple, ast.List)):
        candidates = list(value.elts)
    else:
        return None
    if not candidates:
        return None
    members: List[str] = []
    for entry in candidates:
        dotted = _dotted_path(entry)
        if dotted is None:
            return None
        members.append(imports.canonical(dotted))
    return tuple(members)


def summarize_module(
    display_path: str,
    source: str,
    module_name: str,
    is_package: bool = False,
) -> ModuleSummary:
    """Summarize one module's source (raises :class:`SyntaxError` if unparsable)."""
    tree = ast.parse(source, filename=display_path)
    imports = _ImportMap(module_name, is_package)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            imports.add_import_from(node)

    module_level: Set[str] = set()
    tables: Dict[str, Tuple[str, ...]] = {}
    classes: List[ClassSummary] = []
    functions: List[FunctionSummary] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module_level.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _assigned_names(target):
                    module_level.add(name)
                if (
                    isinstance(target, ast.Name)
                    and len(node.targets) == 1
                ):
                    members = _callable_table_members(node.value, imports)
                    if members is not None:
                        tables[target.id] = members
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_level.add(node.target.id)

    frozen_module_level = frozenset(module_level)

    def summarize_function(
        node: ast.AST,
        qual_prefix: str,
        class_name: Optional[str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{qual_prefix}{node.name}" if qual_prefix else node.name
        params = _function_params(node)
        summarizer = _FunctionSummarizer(
            node.body,
            params,
            imports,
            frozen_module_level,
            tables,
            class_name,
        )
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            summarizer.annotate_param_type(arg.arg, arg.annotation)
        references = _references_in(list(node.body), skip_imports=True)
        functions.append(
            summarizer.summarize(qualname, node.name, node.lineno, references)
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summarize_function(child, f"{qualname}.", class_name)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize_function(node, "", None)
        elif isinstance(node, ast.ClassDef):
            method_names: List[str] = []
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_names.append(child.name)
                    summarize_function(child, f"{node.name}.", node.name)
            bases: List[str] = []
            for base in node.bases:
                dotted = _dotted_path(base)
                if dotted is not None:
                    bases.append(imports.canonical(dotted))
            classes.append(
                ClassSummary(
                    name=node.name,
                    line=node.lineno,
                    bases=tuple(bases),
                    methods=tuple(method_names),
                )
            )

    # Module body (import-time statements) as a synthetic function.
    body_statements = [
        node
        for node in tree.body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    module_refs: List[ast.AST] = [
        node
        for node in body_statements
        if not isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    # Decorators, defaults and class-level statements execute at import time,
    # so their references count as module references for liveness.
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_refs.extend(node.decorator_list)
            module_refs.extend(
                default for default in node.args.defaults if default is not None
            )
        elif isinstance(node, ast.ClassDef):
            module_refs.extend(node.decorator_list)
            module_refs.extend(node.bases)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    module_refs.extend(child.decorator_list)
                else:
                    module_refs.append(child)
    body_summarizer = _FunctionSummarizer(
        body_statements, [], imports, frozen_module_level, tables, None
    )
    functions.append(
        body_summarizer.summarize(
            MODULE_BODY,
            MODULE_BODY,
            1,
            _references_in(module_refs, skip_imports=True),
        )
    )

    return ModuleSummary(
        module=module_name,
        path=display_path,
        sha=source_sha(source),
        imports=tuple(imports.items()),
        classes=tuple(classes),
        callable_tables=tuple(sorted(tables.items())),
        functions=tuple(functions),
        module_level_names=tuple(sorted(module_level)),
    )


class SummaryCache:
    """Content-hash-keyed disk cache of :class:`ModuleSummary` records.

    One JSON document maps display paths to summaries; :meth:`get` returns a
    cached summary only when the stored sha matches the current source, so
    warm whole-program runs re-summarize only changed files.
    """

    FILENAME = "summaries.json"

    def __init__(self, directory: Optional[Path]) -> None:
        self._directory = directory
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.summarized = 0
        if directory is not None:
            self._load(directory / self.FILENAME)

    def _load(self, path: Path) -> None:
        if not path.is_file():
            return
        try:
            document = json.loads(path.read_text(encoding="utf-8"))  # repro: allow[PURE101] — the summary cache is keyed by content sha, so disk state never changes an analysis result
        except (OSError, ValueError) as error:
            LOGGER.warning("ignoring unreadable summary cache %s: %s", path, error)
            return
        if (
            not isinstance(document, dict)
            or document.get("version") != SUMMARY_SCHEMA_VERSION
        ):
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = {str(key): value for key, value in entries.items()}

    def get(
        self, display_path: str, source: str, module_name: str
    ) -> Optional[ModuleSummary]:
        entry = self._entries.get(display_path)
        if entry is None:
            return None
        if entry.get("sha") != source_sha(source):
            return None
        if entry.get("module") != module_name:
            return None
        try:
            summary = ModuleSummary.from_dict(entry)
        except (KeyError, TypeError, ValueError) as error:
            LOGGER.warning(
                "ignoring corrupt summary-cache entry for %s: %s",
                display_path,
                error,
            )
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        self._entries[summary.path] = summary.to_dict()
        self._dirty = True
        self.summarized += 1

    def flush(self) -> None:
        if self._directory is None or not self._dirty:
            return
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self._directory / self.FILENAME
        document = {
            "version": SUMMARY_SCHEMA_VERSION,
            "entries": {key: self._entries[key] for key in sorted(self._entries)},
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(document, indent=None, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)
        self._dirty = False
