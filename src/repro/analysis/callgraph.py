"""Over-approximate whole-program call graph built from module summaries.

Call targets recorded by :mod:`repro.analysis.summaries` are canonical
dotted names; this module resolves them to concrete functions through

* import aliases and package re-exports (``from repro.analysis import
  analyze_paths`` resolves through ``repro.analysis.__init__``),
* methods on inferred self-types (``self.m()`` dispatches over the
  enclosing class, its ancestors *and* its descendants — dynamic dispatch
  is over-approximated, never missed),
* local instantiations and parameter annotations (``gen = PathGenerator(...)``
  makes ``gen.paths_between()`` a method call on ``PathGenerator``),
* ``functools.partial`` and pool submissions (``pool.map(f, ...)``,
  ``Process(target=f)``) — the wrapped callable becomes an edge,
* module-level dispatch tables (``BUILDERS[name](...)`` fans out to every
  table member).

Each edge carries, per callee parameter, the caller parameters and the
caller call sites whose results may flow into it — enough for the forward
taint engine in :mod:`repro.analysis.flow` without re-reading any source.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.summaries import (
    ArgFlow,
    CallSite,
    FunctionSummary,
    ModuleSummary,
)

#: Parameter names that receive the instance, skipped in positional mapping.
_RECEIVER_PARAMS = ("self", "cls")

#: Maximum alias-chain length followed through package re-exports.
_MAX_REEXPORT_DEPTH = 8


@dataclass(frozen=True)
class ParamFlow:
    """How one callee parameter derives from the calling context."""

    param: str
    caller_params: Tuple[str, ...] = ()
    caller_calls: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Edge:
    """One resolved call: caller function → callee function."""

    caller: str
    callee: str
    line: int
    column: int
    kind: str = "call"      #: ``call`` or ``submit``
    param_flows: Tuple[ParamFlow, ...] = ()


class CallGraph:
    """Resolved functions, edges, and per-site callee targets."""

    def __init__(self) -> None:
        #: fqid → function summary.
        self.functions: Dict[str, FunctionSummary] = {}
        #: fqid → owning module name.
        self.function_module: Dict[str, str] = {}
        #: caller fqid → outgoing edges (sorted by callee, line).
        self.edges_from: Dict[str, List[Edge]] = {}
        #: caller fqid → call-site index → resolved callee fqids.
        self.call_targets: Dict[str, Dict[int, Tuple[str, ...]]] = {}
        #: (canonical callable, line, column) submissions per caller fqid.
        self.submissions: Dict[str, Tuple[Tuple[str, int, int], ...]] = {}

    def reachable(
        self, roots: Sequence[str], kinds: Optional[FrozenSet[str]] = None
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure from *roots*: fqid → call chain (root first, self last)."""
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: "collections.deque[str]" = collections.deque()
        for root in sorted(set(roots)):
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for edge in self.edges_from.get(current, ()):
                if kinds is not None and edge.kind not in kinds:
                    continue
                if edge.callee in chains:
                    continue
                chains[edge.callee] = chains[current] + (edge.callee,)
                queue.append(edge.callee)
        return chains


def render_chain(chain: Sequence[str], limit: int = 5) -> str:
    """Human-readable call chain for violation messages."""
    shown = list(chain)
    if len(shown) > limit:
        shown = shown[: limit - 1] + ["…", shown[-1]]
    return " -> ".join(shown)


class _SymbolTable:
    """Module/class/function indexes the resolver queries."""

    def __init__(self, modules: Mapping[str, ModuleSummary]) -> None:
        self.modules = dict(modules)
        self.functions: Dict[str, FunctionSummary] = {}
        self.function_module: Dict[str, str] = {}
        self.class_methods: Dict[str, Dict[str, str]] = {}
        self.class_bases: Dict[str, Tuple[str, ...]] = {}
        self.subclasses: Dict[str, List[str]] = {}
        self.tables: Dict[str, Tuple[str, ...]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}

        for module_name in sorted(self.modules):
            summary = self.modules[module_name]
            self.imports[module_name] = dict(summary.imports)
            for name, members in summary.callable_tables:
                self.tables[f"{module_name}.{name}"] = members
            for function in summary.functions:
                fqid = f"{module_name}.{function.qualname}"
                self.functions[fqid] = function
                self.function_module[fqid] = module_name
            for class_summary in summary.classes:
                fq_class = f"{module_name}.{class_summary.name}"
                methods: Dict[str, str] = {}
                for method in class_summary.methods:
                    methods[method] = f"{fq_class}.{method}"
                self.class_methods[fq_class] = methods
                self.class_bases[fq_class] = class_summary.bases

        # Resolve base-name strings to fully-qualified classes, then invert.
        for fq_class in sorted(self.class_bases):
            module_name = fq_class.rsplit(".", 1)[0]
            for base in self.class_bases[fq_class]:
                base_fq = self._resolve_class_name(module_name, base)
                if base_fq is not None:
                    self.subclasses.setdefault(base_fq, []).append(fq_class)

    def _resolve_class_name(self, module_name: str, dotted: str) -> Optional[str]:
        if "." not in dotted:
            candidate = f"{module_name}.{dotted}"
            return candidate if candidate in self.class_methods else None
        if dotted in self.class_methods:
            return dotted
        resolved = self.resolve_through_reexports(dotted)
        return resolved if resolved in self.class_methods else None

    def resolve_through_reexports(self, dotted: str) -> str:
        """Follow ``pkg/__init__`` aliases: ``repro.analysis.analyze_paths`` →
        ``repro.analysis.walker.analyze_paths``."""
        current = dotted
        for _ in range(_MAX_REEXPORT_DEPTH):
            module_name = self._longest_module_prefix(current)
            if module_name is None:
                return current
            rest = current[len(module_name) + 1 :]
            if not rest:
                return current
            head = rest.split(".", 1)[0]
            alias_target = self.imports[module_name].get(head)
            if alias_target is None or alias_target == current:
                return current
            remainder = rest[len(head) :]
            current = alias_target + remainder
        return current

    def _longest_module_prefix(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def ancestors(self, fq_class: str) -> List[str]:
        """The class plus every transitive project-local base, BFS order."""
        seen: List[str] = []
        queue = [fq_class]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.class_methods:
                continue
            seen.append(current)
            module_name = current.rsplit(".", 1)[0]
            for base in self.class_bases.get(current, ()):
                resolved = self._resolve_class_name(module_name, base)
                if resolved is not None:
                    queue.append(resolved)
        return seen

    def descendants(self, fq_class: str) -> List[str]:
        seen: List[str] = []
        queue = list(self.subclasses.get(fq_class, ()))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.append(current)
            queue.extend(self.subclasses.get(current, ()))
        return seen

    def method_targets(self, fq_class: str, method: str) -> List[str]:
        """``self.method`` dispatch: the class, its ancestors, its descendants."""
        found: List[str] = []
        for candidate in self.ancestors(fq_class):
            fqid = self.class_methods.get(candidate, {}).get(method)
            if fqid is not None:
                found.append(fqid)
                break  # nearest ancestor definition wins for the static part
        for candidate in self.descendants(fq_class):
            fqid = self.class_methods.get(candidate, {}).get(method)
            if fqid is not None:
                found.append(fqid)
        return sorted(set(found))

    def constructor_targets(self, fq_class: str) -> List[str]:
        for candidate in self.ancestors(fq_class):
            fqid = self.class_methods.get(candidate, {}).get("__init__")
            if fqid is not None:
                return [fqid]
        return []

    def resolve(self, module_name: str, caller_qualname: str, target: str) -> List[str]:
        """Resolve one canonical call target to function fqids."""
        if not target:
            return []
        if target.endswith("[]"):
            return self._resolve_table(module_name, target[:-2])
        if target.startswith("self."):
            rest = target[5:]
            if "." in rest:
                return []
            caller = self.functions.get(f"{module_name}.{caller_qualname}")
            if caller is None or caller.class_name is None:
                return []
            return self.method_targets(f"{module_name}.{caller.class_name}", rest)
        if "." not in target:
            return self._resolve_bare(module_name, caller_qualname, target)
        return self._resolve_dotted(module_name, target)

    def _resolve_table(self, module_name: str, base: str) -> List[str]:
        members: Optional[Tuple[str, ...]] = None
        if "." not in base:
            members = self.tables.get(f"{module_name}.{base}")
        else:
            canonical = self.resolve_through_reexports(base)
            members = self.tables.get(canonical)
        if members is None:
            return []
        found: List[str] = []
        for member in members:
            if "." in member:
                found.extend(self._resolve_dotted(module_name, member))
            else:
                found.extend(self._resolve_bare(module_name, "", member))
        return sorted(set(found))

    def _resolve_bare(
        self, module_name: str, caller_qualname: str, name: str
    ) -> List[str]:
        # Nested definitions shadow module-level ones: walk the caller's
        # qualname scopes from innermost outwards.
        scope_parts = caller_qualname.split(".") if caller_qualname else []
        for cut in range(len(scope_parts), -1, -1):
            prefix = ".".join(scope_parts[:cut])
            fqid = (
                f"{module_name}.{prefix}.{name}" if prefix else f"{module_name}.{name}"
            )
            if fqid in self.functions and self.functions[fqid].class_name is None:
                return [fqid]
        fq_class = f"{module_name}.{name}"
        if fq_class in self.class_methods:
            return self.constructor_targets(fq_class)
        return []

    def _resolve_dotted(self, module_name: str, dotted: str) -> List[str]:
        canonical = self.resolve_through_reexports(dotted)
        # Own-module attribute paths first: ``Helper.compute`` written without
        # a module prefix resolves against the caller's module.
        own = self._resolve_in_module(module_name, canonical)
        if own:
            return own
        prefix = self._longest_module_prefix(canonical)
        if prefix is None:
            return []
        rest = canonical[len(prefix) + 1 :]
        if not rest:
            return []
        return self._resolve_in_module(prefix, rest)

    def _resolve_in_module(self, module_name: str, rest: str) -> List[str]:
        if module_name not in self.modules:
            return []
        fqid = f"{module_name}.{rest}"
        if fqid in self.functions:
            summary = self.functions[fqid]
            if summary.class_name is None or "." in rest:
                return [fqid]
        parts = rest.split(".")
        fq_class = f"{module_name}.{parts[0]}"
        if fq_class in self.class_methods:
            if len(parts) == 1:
                return self.constructor_targets(fq_class)
            if len(parts) == 2:
                return self.method_targets(fq_class, parts[1])
        return []


def _is_method(summary: FunctionSummary) -> bool:
    return bool(
        summary.class_name is not None
        and summary.params
        and summary.params[0] in _RECEIVER_PARAMS
    )


def _map_arguments(
    site: CallSite, callee: FunctionSummary
) -> Tuple[ParamFlow, ...]:
    """Align a call site's argument flows with the callee's parameters."""
    params = list(callee.params)
    if _is_method(callee):
        params = params[1:]
    flows: Dict[str, Tuple[Set[str], Set[int]]] = {}

    def feed(param: str, flow: ArgFlow) -> None:
        bucket = flows.setdefault(param, (set(), set()))
        bucket[0].update(flow.params)
        bucket[1].update(flow.calls)

    for position, flow in enumerate(site.args):
        if position < len(params):
            feed(params[position], flow)
        elif params:
            feed(params[-1], flow)  # overflow into *args/**kwargs slot
    named = set(params)
    for name, flow in site.keywords:
        if name in named:
            feed(name, flow)
        elif params:
            feed(params[-1], flow)
    return tuple(
        ParamFlow(
            param=param,
            caller_params=tuple(sorted(flows[param][0])),
            caller_calls=tuple(sorted(flows[param][1])),
        )
        for param in sorted(flows)
    )


def _partial_target(site: CallSite) -> Optional[Tuple[str, CallSite]]:
    """Rewrite ``functools.partial(f, ...)`` as a call to ``f``."""
    if site.target not in ("functools.partial", "partial"):
        return None
    if not site.args:
        return None
    first = site.args[0]
    if first.params or len(first.names) != 1:
        return None
    rewritten = CallSite(
        index=site.index,
        target=first.names[0],
        line=site.line,
        column=site.column,
        args=site.args[1:],
        keywords=site.keywords,
        candidates=(),
    )
    return first.names[0], rewritten


def build_call_graph(modules: Mapping[str, ModuleSummary]) -> CallGraph:
    """Resolve every recorded call site into a :class:`CallGraph`."""
    table = _SymbolTable(modules)
    graph = CallGraph()
    graph.functions = table.functions
    graph.function_module = table.function_module

    for fqid in sorted(table.functions):
        module_name = table.function_module[fqid]
        summary = table.functions[fqid]
        site_targets: Dict[int, Tuple[str, ...]] = {}
        resolved_sites: List[Tuple[CallSite, Tuple[str, ...]]] = []
        for site in summary.calls:
            effective = site
            rewritten = _partial_target(site)
            if rewritten is not None:
                effective = rewritten[1]
            if site.candidates:
                callees: List[str] = []
                for candidate in site.candidates:
                    callees.extend(
                        table.resolve(module_name, summary.qualname, candidate)
                    )
                targets = tuple(sorted(set(callees)))
            else:
                targets = tuple(
                    table.resolve(module_name, summary.qualname, effective.target)
                )
            site_targets[site.index] = targets
            resolved_sites.append((effective, targets))

        edges: List[Edge] = []
        for effective, targets in resolved_sites:
            for callee in targets:
                edges.append(
                    Edge(
                        caller=fqid,
                        callee=callee,
                        line=effective.line,
                        column=effective.column,
                        kind="call",
                        param_flows=_map_arguments(
                            effective, table.functions[callee]
                        ),
                    )
                )
        for submitted, line, column in summary.submitted:
            for callee in table.resolve(module_name, summary.qualname, submitted):
                edges.append(
                    Edge(
                        caller=fqid,
                        callee=callee,
                        line=line,
                        column=column,
                        kind="submit",
                        param_flows=(),
                    )
                )
        edges.sort(key=lambda edge: (edge.callee, edge.line, edge.column, edge.kind))
        if edges:
            graph.edges_from[fqid] = edges
        graph.call_targets[fqid] = site_targets
        if summary.submitted:
            graph.submissions[fqid] = summary.submitted
    return graph


@dataclass
class ProgramModel:
    """Everything a program-scope rule sees: summaries, graph, and config."""

    modules: Dict[str, ModuleSummary]
    graph: CallGraph
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    #: Lazily loaded terminal names referenced by the reference roots
    #: (tests/benchmarks/examples) — DEAD101's external liveness signal.
    reference_loader: Optional[Callable[[], FrozenSet[str]]] = None
    _reference_names: Optional[FrozenSet[str]] = None

    def module_for(self, fqid: str) -> Optional[ModuleSummary]:
        module_name = self.graph.function_module.get(fqid)
        return None if module_name is None else self.modules.get(module_name)

    def path_for(self, fqid: str) -> str:
        summary = self.module_for(fqid)
        return summary.path if summary is not None else "<unknown>"

    def reference_names(self) -> FrozenSet[str]:
        if self._reference_names is None:
            if self.reference_loader is None:
                self._reference_names = frozenset()
            else:
                self._reference_names = self.reference_loader()
        return self._reference_names


def build_program_model(
    modules: Mapping[str, ModuleSummary],
    config: Optional[AnalysisConfig] = None,
    reference_loader: Optional[Callable[[], FrozenSet[str]]] = None,
) -> ProgramModel:
    """Assemble the whole-program model handed to program-scope rules."""
    return ProgramModel(
        modules=dict(modules),
        graph=build_call_graph(modules),
        config=config if config is not None else AnalysisConfig(),
        reference_loader=reference_loader,
    )
