"""File discovery and (parallel) per-file analysis.

The walker discovers ``.py`` files under the given paths, runs every
file-scope rule on each file — in parallel worker processes when there is
enough work — then runs the project-scope rules once over all parsed
modules, applies the inline suppressions, and returns one sorted, stable
report.  Output order is deterministic regardless of worker scheduling:
violations sort by (path, line, column, code).

The per-file worker is a module-level function on purpose: the walker must
itself satisfy MP001 (pickle-safe dispatch).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import FILE_SCOPE, PROJECT_SCOPE, ModuleContext, Violation
from repro.analysis.registry import AnalysisError, build_rules, rule_codes
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

#: Files under these directory names are never analyzed.
SKIPPED_DIRECTORIES = frozenset({"__pycache__", ".git", ".fubar-cache"})

#: Below this many files, forking workers costs more than it saves.
MIN_FILES_FOR_PARALLEL = 8


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    violations: List[Violation] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return {
            "files_analyzed": self.files_analyzed,
            "rules": list(self.rules_run),
            "violations": [violation.to_dict() for violation in self.violations],
            "counts": {code: counts[code] for code in sorted(counts)},
            "clean": self.clean,
        }


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Python files under *paths* (files or directories), sorted, deduplicated."""
    found: Dict[Path, None] = {}
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                found.setdefault(path.resolve(), None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in SKIPPED_DIRECTORIES for part in candidate.parts):
                    continue
                found.setdefault(candidate.resolve(), None)
        else:
            raise AnalysisError(f"no such file or directory: {entry}")
    return sorted(found)


def _display_path(path: Path) -> str:
    """Repo-relative path when possible (stable across machines), else absolute."""
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _analyze_source(
    display_path: str, source: str, select: Sequence[str]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Run the file-scope rules on one source text.

    Returns plain dicts (violations, suppressions) so the result crosses a
    process boundary without custom picklers.
    """
    try:
        module = ModuleContext.parse(display_path, source)
    except SyntaxError as error:
        violation = Violation(
            path=display_path,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            code="PARSE001",
            message=f"file does not parse: {error.msg}",
        )
        return [violation.to_dict()], []
    violations: List[Violation] = []
    for rule in build_rules(select):
        if rule.scope == FILE_SCOPE:
            violations.extend(rule.check(module))
    suppressions = parse_suppressions(display_path, module.lines)
    return (
        [violation.to_dict() for violation in violations],
        [suppression.to_dict() for suppression in suppressions],
    )


def _analyze_file_task(
    task: Tuple[str, str, Tuple[str, ...]]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Worker entry point: (absolute path, display path, selected codes)."""
    absolute, display, select = task
    with open(absolute, "r", encoding="utf-8") as handle:
        source = handle.read()
    return _analyze_source(display, source, list(select))


def default_jobs(num_files: int) -> int:
    """Worker count: capped by the scheduler-visible CPUs and the file count."""
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS / Windows
        available = os.cpu_count() or 1
    return max(1, min(num_files, available))


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    project_rules: Optional[Sequence[object]] = None,
) -> AnalysisReport:
    """Analyze every Python file under *paths* and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories to analyze.
    select:
        Rule codes to run (default: every registered rule).  SUP001/SUP002
        always run — suppression hygiene is not optional.
    jobs:
        Worker processes for the per-file stage; ``1`` forces the serial
        path (identical results, useful under debuggers and in tests).
    project_rules:
        Pre-instantiated project-scope rules to use instead of the
        registered ones (tests inject custom SIG001 tables this way).
    """
    selected = list(select) if select is not None else rule_codes()
    for code in selected:
        build_rules([code])  # fail loudly on unknown codes before any work
    files = discover_files(paths)
    tasks = [
        (str(path), _display_path(path), tuple(selected)) for path in files
    ]

    raw_violations: List[Dict[str, object]] = []
    raw_suppressions: List[Dict[str, object]] = []
    worker_count = default_jobs(len(tasks)) if jobs is None else max(1, jobs)
    if worker_count > 1 and len(tasks) >= MIN_FILES_FOR_PARALLEL:
        with multiprocessing.Pool(processes=worker_count) as pool:
            results = pool.map(_analyze_file_task, tasks)
    else:
        results = [_analyze_file_task(task) for task in tasks]
    for file_violations, file_suppressions in results:
        raw_violations.extend(file_violations)
        raw_suppressions.extend(file_suppressions)

    violations = [
        Violation(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            code=str(data["code"]),
            message=str(data["message"]),
        )
        for data in raw_violations
    ]

    # Project-scope rules run once, in-process, over every parsed module.
    modules: List[ModuleContext] = []
    for absolute, display, _ in tasks:
        with open(absolute, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            modules.append(ModuleContext.parse(display, source))
        except SyntaxError:
            continue  # already reported as PARSE001 by the file stage
    if project_rules is None:
        project_rules = [
            rule
            for rule in build_rules(selected)
            if rule.scope == PROJECT_SCOPE
        ]
    for rule in project_rules:
        violations.extend(rule.check_project(modules))  # type: ignore[attr-defined]

    suppressions = [Suppression.from_dict(data) for data in raw_suppressions]
    # Codes outside the selected set did not run, so their suppressions are
    # unverifiable this run — exempt them from the orphan check.
    active = set(selected) | {rule.code for rule in project_rules}  # type: ignore[attr-defined]
    for suppression in suppressions:
        for code in suppression.codes:
            if code not in active:
                suppression.used[code] = True
    kept, meta = apply_suppressions(violations, suppressions)
    kept.extend(meta)
    kept.sort(key=Violation.sort_key)
    return AnalysisReport(
        violations=kept,
        files_analyzed=len(tasks),
        rules_run=tuple(sorted(active)),
    )
