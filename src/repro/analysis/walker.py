"""File discovery and (parallel) per-file analysis.

The walker discovers ``.py`` files under the given paths, runs every
file-scope rule on each file — in parallel worker processes when there is
enough work — then runs the project-scope rules once over all parsed
modules, builds the whole-program model (summaries + call graph) for the
program-scope rules, applies the inline suppressions, and returns one
sorted, stable report.  Output order is deterministic regardless of worker
scheduling: violations sort by (path, line, column, code).

Per-function summaries are content-hashed and cached on disk
(:class:`~repro.analysis.summaries.SummaryCache`), so a warm whole-program
run re-summarizes only the files whose content changed.  ``--changed-only``
narrows the *file-scope* stage to git-modified files while the project and
program stages still see the whole tree through the warm cache.

The per-file worker is a module-level function on purpose: the walker must
itself satisfy MP001 (pickle-safe dispatch).
"""

from __future__ import annotations

import ast
import logging
import multiprocessing
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    FILE_SCOPE,
    PROGRAM_SCOPE,
    PROJECT_SCOPE,
    ModuleContext,
    Violation,
)
from repro.analysis.callgraph import ProgramModel, build_program_model
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.registry import AnalysisError, build_rules, rule_codes
from repro.analysis.summaries import (
    ModuleSummary,
    SummaryCache,
    module_name_for,
    summarize_module,
)
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

LOGGER = logging.getLogger(__name__)

#: Files under these directory names are never analyzed.
SKIPPED_DIRECTORIES = frozenset(
    {"__pycache__", ".git", ".fubar-cache", ".repro-analysis-cache"}
)

#: Below this many files, forking workers costs more than it saves.
MIN_FILES_FOR_PARALLEL = 8


@dataclass(frozen=True)
class OrphanSuppression:
    """A stale ``# repro: allow[CODE]`` comment (surfaced for ``--fix-orphans``)."""

    path: str
    line: int
    code: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "code": self.code}


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    violations: List[Violation] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: Tuple[str, ...] = ()
    files_summarized: int = 0
    summary_cache_hits: int = 0
    orphans: List[OrphanSuppression] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return {
            "files_analyzed": self.files_analyzed,
            "files_summarized": self.files_summarized,
            "summary_cache_hits": self.summary_cache_hits,
            "rules": list(self.rules_run),
            "violations": [violation.to_dict() for violation in self.violations],
            "counts": {code: counts[code] for code in sorted(counts)},
            "clean": self.clean,
        }


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Python files under *paths* (files or directories), sorted, deduplicated."""
    found: Dict[Path, None] = {}
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                found.setdefault(path.resolve(), None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):  # repro: allow[PURE101] — file discovery defines the analysis input set; it is not a cached computation
                if any(part in SKIPPED_DIRECTORIES for part in candidate.parts):
                    continue
                found.setdefault(candidate.resolve(), None)
        else:
            raise AnalysisError(f"no such file or directory: {entry}")
    return sorted(found)


def _display_path(path: Path) -> str:
    """Repo-relative path when possible (stable across machines), else absolute."""
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def git_changed_files() -> Optional[Set[Path]]:
    """Resolved paths of files git reports as modified/added/untracked.

    Returns ``None`` (caller falls back to a full run) when git is absent or
    the working directory is not inside a repository.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as error:
        LOGGER.warning("--changed-only: git unavailable (%s); analyzing all files", error)
        return None
    changed: Set[Path] = set()
    root = Path(top)
    for line in status.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip().strip('"')
        if entry:
            changed.add((root / entry).resolve())
    return changed


def _analyze_source(
    display_path: str, source: str, select: Sequence[str]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Run the file-scope rules on one source text.

    Returns plain dicts (violations, suppressions) so the result crosses a
    process boundary without custom picklers.
    """
    try:
        module = ModuleContext.parse(display_path, source)
    except SyntaxError as error:
        violation = Violation(
            path=display_path,
            line=error.lineno or 1,
            column=(error.offset or 0) + 1,
            code="PARSE001",
            message=f"file does not parse: {error.msg}",
        )
        return [violation.to_dict()], []
    violations: List[Violation] = []
    for rule in build_rules(select):
        if rule.scope == FILE_SCOPE:
            violations.extend(rule.check(module))
    suppressions = parse_suppressions(display_path, module.lines)
    return (
        [violation.to_dict() for violation in violations],
        [suppression.to_dict() for suppression in suppressions],
    )


def _analyze_file_task(
    task: Tuple[str, str, Tuple[str, ...]]
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Worker entry point: (absolute path, display path, selected codes)."""
    absolute, display, select = task
    with open(absolute, "r", encoding="utf-8") as handle:
        source = handle.read()
    return _analyze_source(display, source, list(select))


def default_jobs(num_files: int) -> int:
    """Worker count: capped by the scheduler-visible CPUs and the file count."""
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS / Windows
        available = os.cpu_count() or 1
    return max(1, min(num_files, available))


def _reference_name_loader(
    config: AnalysisConfig,
) -> "FrozenSet[str]":
    """Terminal names referenced anywhere under the configured reference roots."""
    names: Set[str] = set()
    for root in config.reference_root_paths():
        for candidate in sorted(root.rglob("*.py")):
            if any(part in SKIPPED_DIRECTORIES for part in candidate.parts):
                continue
            try:
                tree = ast.parse(candidate.read_text(encoding="utf-8"))
            except (OSError, SyntaxError) as error:
                LOGGER.warning("skipping reference file %s: %s", candidate, error)
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Name):
                    names.add(node.id)
                elif isinstance(node, ast.Attribute):
                    names.add(node.attr)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        names.add(alias.name.rsplit(".", 1)[-1])
    return frozenset(names)


def _summarize_files(
    tasks: Sequence[Tuple[str, str, Tuple[str, ...]]],
    cache: SummaryCache,
) -> Dict[str, ModuleSummary]:
    """Summarize every file (through the content-hash cache), keyed by module."""
    summaries: Dict[str, ModuleSummary] = {}
    for absolute, display, _ in tasks:
        path = Path(absolute)
        with open(absolute, "r", encoding="utf-8") as handle:
            source = handle.read()
        module_name = module_name_for(path)
        summary = cache.get(display, source, module_name)
        if summary is None:
            try:
                summary = summarize_module(
                    display,
                    source,
                    module_name,
                    is_package=path.name == "__init__.py",
                )
            except SyntaxError:
                continue  # already reported as PARSE001 by the file stage
            cache.put(summary)
        # Later files win on module-name collisions; sorted input keeps this
        # deterministic (collisions only happen outside package roots).
        summaries[module_name] = summary
    cache.flush()
    return summaries


def build_program(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    summary_cache_dir: Optional[Path] = None,
) -> "ProgramModel":
    """Summarize *paths* and build the whole-program model (no rules run).

    Backs ``--async-map`` and the call-graph unit tests: everything the
    program-scope rules see, without producing violations.
    """
    files = discover_files(paths)
    tasks = [(str(path), _display_path(path), ()) for path in files]
    cache = SummaryCache(summary_cache_dir)
    summaries = _summarize_files(tasks, cache)
    effective_config = config if config is not None else load_config()
    return build_program_model(
        summaries,
        config=effective_config,
        reference_loader=lambda: _reference_name_loader(effective_config),
    )


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    project_rules: Optional[Sequence[object]] = None,
    config: Optional[AnalysisConfig] = None,
    summary_cache_dir: Optional[Path] = None,
    changed_only: bool = False,
) -> AnalysisReport:
    """Analyze every Python file under *paths* and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories to analyze.
    select:
        Rule codes to run (default: every registered rule).  SUP001/SUP002
        always run — suppression hygiene is not optional.
    jobs:
        Worker processes for the per-file stage; ``1`` forces the serial
        path (identical results, useful under debuggers and in tests).
    project_rules:
        Pre-instantiated project-scope rules to use instead of the
        registered ones (tests inject custom SIG001 tables this way).
    config:
        Interprocedural configuration; ``None`` probes ``analysis.toml`` in
        the working directory.
    summary_cache_dir:
        Directory for the on-disk summary cache; ``None`` keeps summaries
        in memory only (every run is cold).
    changed_only:
        Restrict the *file-scope* stage to git-modified files.  The project
        and program stages still cover the full tree (warm summaries make
        that cheap); suppressions of file-scope rules in unchanged files
        are exempted from the orphan check since they were not verifiable.
    """
    selected = list(select) if select is not None else rule_codes()
    for code in selected:
        build_rules([code])  # fail loudly on unknown codes before any work
    files = discover_files(paths)
    tasks = [
        (str(path), _display_path(path), tuple(selected)) for path in files
    ]

    changed: Optional[Set[Path]] = None
    if changed_only:
        changed = git_changed_files()
    if changed is not None:
        file_stage_tasks = [
            task for task, path in zip(tasks, files) if path in changed
        ]
    else:
        file_stage_tasks = list(tasks)
    file_stage_paths = {task[1] for task in file_stage_tasks}

    raw_violations: List[Dict[str, object]] = []
    raw_suppressions: List[Dict[str, object]] = []
    worker_count = (
        default_jobs(len(file_stage_tasks)) if jobs is None else max(1, jobs)
    )
    if worker_count > 1 and len(file_stage_tasks) >= MIN_FILES_FOR_PARALLEL:
        with multiprocessing.Pool(processes=worker_count) as pool:
            results = pool.map(_analyze_file_task, file_stage_tasks)
    else:
        results = [_analyze_file_task(task) for task in file_stage_tasks]
    for file_violations, file_suppressions in results:
        raw_violations.extend(file_violations)
        raw_suppressions.extend(file_suppressions)

    violations = [
        Violation(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            code=str(data["code"]),
            message=str(data["message"]),
        )
        for data in raw_violations
    ]

    # Project-scope rules run once, in-process, over every parsed module;
    # the same loop collects suppressions for files the (possibly narrowed)
    # file stage did not visit, so program-scope violations anywhere in the
    # tree can still be suppressed inline.
    modules: List[ModuleContext] = []
    extra_suppressions: List[Suppression] = []
    for absolute, display, _ in tasks:
        with open(absolute, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            parsed = ModuleContext.parse(display, source)
        except SyntaxError:
            continue  # already reported as PARSE001 by the file stage
        modules.append(parsed)
        if display not in file_stage_paths:
            extra_suppressions.extend(parse_suppressions(display, parsed.lines))
    if project_rules is None:
        project_rules = [
            rule
            for rule in build_rules(selected)
            if rule.scope == PROJECT_SCOPE
        ]
    for rule in project_rules:
        violations.extend(rule.check_project(modules))  # type: ignore[attr-defined]

    # Program-scope rules: summaries -> call graph -> interprocedural checks.
    program_rules = [
        rule for rule in build_rules(selected) if rule.scope == PROGRAM_SCOPE
    ]
    effective_config = config if config is not None else load_config()
    summary_cache = SummaryCache(summary_cache_dir)
    files_summarized = 0
    summary_cache_hits = 0
    if program_rules:
        summaries = _summarize_files(tasks, summary_cache)
        files_summarized = summary_cache.summarized
        summary_cache_hits = summary_cache.hits
        program = build_program_model(
            summaries,
            config=effective_config,
            reference_loader=lambda: _reference_name_loader(effective_config),
        )
        for rule in program_rules:
            violations.extend(rule.check_program(program))

    suppressions = [Suppression.from_dict(data) for data in raw_suppressions]
    suppressions.extend(extra_suppressions)
    # Codes outside the selected set did not run, so their suppressions are
    # unverifiable this run — exempt them from the orphan check.  With
    # --changed-only the file-scope rules did not run on unchanged files, so
    # their file-scope suppressions are likewise exempt.
    active = set(selected) | {rule.code for rule in project_rules}  # type: ignore[attr-defined]
    active |= {rule.code for rule in program_rules}
    verifiable_everywhere = {
        rule.code
        for rule in list(project_rules) + list(program_rules)  # type: ignore[arg-type]
    }
    # Config-gated rules (ASY101 with no async-ready modules, DEAD101 with
    # no audited packages) ran as no-ops: their suppressions are likewise
    # unverifiable and must not surface as orphans.
    inert = {
        rule.code
        for rule in program_rules
        if not rule.is_enabled(effective_config)
    }
    for suppression in suppressions:
        for code in suppression.codes:
            if code not in active or code in inert:
                suppression.used[code] = True
            elif (
                suppression.path not in file_stage_paths
                and code not in verifiable_everywhere
            ):
                suppression.used[code] = True
    kept, meta = apply_suppressions(violations, suppressions)
    orphans = [
        OrphanSuppression(
            path=suppression.path,
            line=suppression.line,
            code=code,
        )
        for suppression in suppressions
        for code in suppression.codes
        if not suppression.used.get(code, False)
    ]
    orphans.sort(key=lambda orphan: (orphan.path, orphan.line, orphan.code))
    kept.extend(meta)
    kept.sort(key=Violation.sort_key)
    return AnalysisReport(
        violations=kept,
        files_analyzed=len(file_stage_tasks) if changed is not None else len(tasks),
        rules_run=tuple(sorted(active)),
        files_summarized=files_summarized,
        summary_cache_hits=summary_cache_hits,
        orphans=orphans,
    )
