"""Forward dataflow over the call graph: taint propagation and value origins.

Two engines, both deliberately *may*-analyses (union semantics, fixpoint,
over-approximate) so a violation is only suppressed when the property
provably holds:

* :func:`propagate_taint` — starting from entry functions whose named
  parameters carry the cell seed, walk call edges and mark, per reached
  function, which of its parameters may derive from a seed.  SEED101 then
  checks every reachable RNG construction against that set.
* :func:`store_producers` — given a cache-store site, climb the value's
  derivation *backwards* (through the parameters of nested helpers like a
  ``finish(payload, record)`` closure) to the functions whose return values
  are actually cached.  PURE101 then audits those producers' transitive
  call trees for ambient reads.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from repro.analysis.callgraph import CallGraph, Edge
from repro.analysis.summaries import StoreSite


@dataclass(frozen=True)
class TaintResult:
    """Reachability chains plus per-function tainted parameter sets."""

    chains: Dict[str, Tuple[str, ...]]
    tainted: Dict[str, FrozenSet[str]]


def propagate_taint(
    graph: CallGraph, seeds: Mapping[str, FrozenSet[str]]
) -> TaintResult:
    """Combined reachability + may-taint fixpoint from *seeds*.

    ``seeds`` maps entry fqids to the parameter names that carry the taint
    (e.g. ``{"repro.runner.engine.evaluate_cell": {"spec"}}``).  Every
    function reachable from an entry appears in ``chains``; its ``tainted``
    set holds the parameters that may derive from a seeded source.
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    tainted: Dict[str, Set[str]] = {}
    queue: "collections.deque[str]" = collections.deque()

    for fqid in sorted(seeds):
        if fqid not in graph.functions:
            continue
        chains[fqid] = (fqid,)
        tainted[fqid] = set(seeds[fqid])
        queue.append(fqid)

    while queue:
        current = queue.popleft()
        current_taint = tainted.get(current, set())
        for edge in graph.edges_from.get(current, ()):
            incoming: Set[str] = set()
            for flow in edge.param_flows:
                if current_taint.intersection(flow.caller_params):
                    incoming.add(flow.param)
            callee_taint = tainted.setdefault(edge.callee, set())
            grew = not incoming.issubset(callee_taint)
            callee_taint.update(incoming)
            if edge.callee not in chains:
                chains[edge.callee] = chains[current] + (edge.callee,)
                queue.append(edge.callee)
            elif grew:
                queue.append(edge.callee)

    return TaintResult(
        chains=chains,
        tainted={fqid: frozenset(params) for fqid, params in tainted.items()},
    )


def _callers_of(graph: CallGraph) -> Dict[str, List[Edge]]:
    incoming: Dict[str, List[Edge]] = {}
    for caller in sorted(graph.edges_from):
        for edge in graph.edges_from[caller]:
            incoming.setdefault(edge.callee, []).append(edge)
    return incoming


def store_producers(
    graph: CallGraph,
    store_function: str,
    store: StoreSite,
    max_depth: int = 12,
) -> Tuple[str, ...]:
    """Functions whose return values may flow into *store*.

    Starts from the store's own value derivation (call results resolve
    directly through the caller's call-site targets) and climbs through
    parameters: when the stored value derives from a parameter of the
    storing function, every caller's matching argument is inspected, so a
    closure that caches its ``record`` argument attributes the cached value
    to whatever call produced that argument at each call site.
    """
    incoming = _callers_of(graph)
    producers: Set[str] = set()
    site_targets = graph.call_targets.get(store_function, {})
    for index in store.value.calls:
        producers.update(site_targets.get(index, ()))

    seen: Set[Tuple[str, str]] = set()
    queue: "collections.deque[Tuple[str, str, int]]" = collections.deque()
    for param in store.value.params:
        queue.append((store_function, param, 0))

    while queue:
        function, param, depth = queue.popleft()
        if (function, param) in seen or depth > max_depth:
            continue
        seen.add((function, param))
        for edge in incoming.get(function, ()):
            caller_targets = graph.call_targets.get(edge.caller, {})
            for flow in edge.param_flows:
                if flow.param != param:
                    continue
                for index in flow.caller_calls:
                    producers.update(caller_targets.get(index, ()))
                for caller_param in flow.caller_params:
                    queue.append((edge.caller, caller_param, depth + 1))
    return tuple(sorted(producers))
