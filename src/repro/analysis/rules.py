"""Project-specific determinism and invariant rules.

Every rule here guards an invariant the repo's correctness story depends on
(see README «Static analysis» for the catalogue):

* **DET001** — unseeded entropy: the stdlib ``random`` global API, the
  legacy ``np.random.*`` global API, ``os.urandom``, builtin ``hash()``
  (salted per process for ``str``), and wall-clock time used as a seed.
  All randomness must flow through an explicitly seeded
  ``np.random.Generator``.
* **DET002** — iteration over an unordered ``set``/``frozenset`` whose
  order escapes (for-loops, comprehensions, ``list``/``tuple``/``zip``/
  ``enumerate``/``join``) without an explicit ``sorted()``.  Hash-salted
  string sets iterate in a different order every *process*, which silently
  perturbs results, cache keys and RNG draw order.  Dict iteration is
  insertion-ordered on the supported interpreters and is not flagged.
* **DET003** — an RNG constructed without a seed: ``default_rng()`` /
  ``SeedSequence()`` / bit generators with no argument (or a literal
  ``None``) fall back to OS entropy.  Seeds must come from a config/spec
  field so a record's seed regenerates its run.
* **MP001** — pickle-unsafe callables handed to worker pools /
  processes: lambdas, nested functions and ``self``-bound methods cannot
  cross a ``spawn`` boundary and break the sweep engine's workers.
* **SIG001** — content-signature completeness: the fields of the classes
  that feed :func:`repro.paths.cache.topology_signature` and
  :meth:`repro.runner.spec.CellSpec.canonical` must each be hashed (or be
  on the rule's explicit, justified exclusion list), and classes used
  verbatim as cache-key components must stay frozen dataclasses.  This is
  the stale-cache bug class: add a behaviour-affecting field without
  extending the signature and every cache silently serves wrong results.
* **EXC001** — silently swallowed exceptions: a handler for a broad type
  (bare / ``Exception`` / ``BaseException``) or for I/O + decode errors
  (``OSError``, ``json.JSONDecodeError``) must re-raise, use the bound
  exception, log, or record an error — never just ``pass``/``continue``/
  ``return None``.  (``FileNotFoundError`` alone is a legitimate cache
  miss and is not flagged.)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    PROJECT_SCOPE,
    ModuleContext,
    Rule,
    Violation,
    call_name,
    terminal_name,
)
from repro.analysis.registry import register_rule

# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

#: numpy.random attributes that are *constructors for seeded RNGs*, not the
#: legacy global API.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Bit-generator / seed constructors that DET003 checks for a missing seed.
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "SeedSequence", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

_TIME_ENTROPY_FUNCTIONS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)


class _ImportTracker(ast.NodeVisitor):
    """Resolve local aliases of the modules the rules care about."""

    def __init__(self) -> None:
        #: local alias -> canonical module path ("numpy", "random", ...)
        self.module_aliases: Dict[str, str] = {}
        #: names imported *from* random ("from random import choice")
        self.random_names: Set[str] = set()
        #: names imported from functools ("partial")
        self.functools_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            root = alias.name.split(".")[0]
            if root in {"numpy", "random", "os", "time", "functools", "json"}:
                # "import numpy.random as npr" binds the full dotted path.
                target = alias.name if alias.asname else root
                self.module_aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.random_names.add(alias.asname or alias.name)
        elif node.module == "functools":
            for alias in node.names:
                self.functools_names.add(alias.asname or alias.name)
        elif node.module in {"numpy", "numpy.random"}:
            for alias in node.names:
                local = alias.asname or alias.name
                if node.module == "numpy" and alias.name == "random":
                    self.module_aliases[local] = "numpy.random"
                elif node.module == "numpy.random":
                    self.module_aliases[local] = f"numpy.random.{alias.name}"


def _resolve_dotted(name: Optional[str], imports: _ImportTracker) -> Optional[str]:
    """Canonicalize a dotted call name through the module's import aliases.

    ``np.random.choice`` → ``numpy.random.choice`` when ``np`` aliases
    numpy; returns the input unchanged when no alias applies.
    """
    if name is None:
        return None
    head, _, tail = name.partition(".")
    canonical_head = imports.module_aliases.get(head)
    if canonical_head is None:
        return name
    return f"{canonical_head}.{tail}" if tail else canonical_head


def _iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _enclosing_function_names(tree: ast.Module) -> Dict[int, str]:
    """Map every AST node id to the name of its innermost enclosing function."""
    owner: Dict[int, str] = {}

    def assign(node: ast.AST, name: str) -> None:
        for child in ast.walk(node):
            owner.setdefault(id(child), name)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            assign(node, node.name)
    return owner


# --------------------------------------------------------------------------
# DET001 — unseeded entropy
# --------------------------------------------------------------------------


@register_rule
class UnseededEntropyRule(Rule):
    code = "DET001"
    summary = (
        "unseeded entropy: stdlib random, legacy np.random globals, os.urandom, "
        "builtin hash(), or wall-clock time used as a seed"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        imports = _ImportTracker()
        imports.visit(module.tree)
        function_of = _enclosing_function_names(module.tree)
        for node in _iter_calls(module.tree):
            dotted = _resolve_dotted(call_name(node.func), imports)
            if dotted is None:
                continue
            violation = self._classify(node, dotted, imports, function_of)
            if violation is not None:
                yield module.violation(node, self.code, violation)
            yield from self._seed_context_violations(module, node, dotted, imports)

    def _classify(
        self,
        node: ast.Call,
        dotted: str,
        imports: _ImportTracker,
        function_of: Dict[int, str],
    ) -> Optional[str]:
        head, _, tail = dotted.partition(".")
        if head == "random" and tail:
            return (
                f"call to the process-global stdlib RNG random.{tail}; draw from "
                f"an explicitly seeded np.random.Generator instead"
            )
        if dotted in imports.random_names and not tail:
            return (
                f"call to stdlib random.{dotted} (imported from random); draw "
                f"from an explicitly seeded np.random.Generator instead"
            )
        if dotted.startswith("numpy.random."):
            function = dotted.rsplit(".", 1)[1]
            if function not in _NP_RANDOM_CONSTRUCTORS:
                return (
                    f"call to the legacy numpy global RNG np.random.{function}; "
                    f"use a seeded np.random.Generator"
                )
        if dotted == "os.urandom":
            return "os.urandom draws OS entropy; results cannot be regenerated"
        if dotted == "hash" and isinstance(node.func, ast.Name):
            if function_of.get(id(node)) == "__hash__":
                return None  # in-process identity only; never persisted
            return (
                "builtin hash() is salted per process for str (PYTHONHASHSEED); "
                "use hashlib for any value that feeds results or cache keys"
            )
        return None

    def _seed_context_violations(
        self,
        module: ModuleContext,
        node: ast.Call,
        dotted: str,
        imports: _ImportTracker,
    ) -> Iterator[Violation]:
        """Flag wall-clock time flowing into a seed position of *node*."""
        function = dotted.rsplit(".", 1)[-1]
        seed_arguments: List[ast.AST] = []
        if function in _SEEDED_CONSTRUCTORS or function == "Generator":
            seed_arguments.extend(node.args)
        seed_arguments.extend(
            keyword.value
            for keyword in node.keywords
            if keyword.arg is not None and "seed" in keyword.arg.lower()
        )
        for argument in seed_arguments:
            for inner in _iter_calls(argument):
                inner_dotted = _resolve_dotted(call_name(inner.func), imports)
                if inner_dotted in _TIME_ENTROPY_FUNCTIONS:
                    yield module.violation(
                        inner,
                        self.code,
                        f"{inner_dotted}() used as a seed; seeds must come from "
                        f"a config/spec field so runs are regenerable",
                    )


# --------------------------------------------------------------------------
# DET002 — order-sensitive iteration over unordered sets
# --------------------------------------------------------------------------

#: Calling one of these on a set is order-insensitive, hence safe.
_ORDER_SAFE_CONSUMERS = frozenset(
    {
        "sorted",
        "len",
        "min",
        "max",
        "sum",
        "any",
        "all",
        "set",
        "frozenset",
        "bool",
        "isdisjoint",
        "issubset",
        "issuperset",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "update",
    }
)

#: Calling one of these *exposes* iteration order.
_ORDER_EXPOSING_CONSUMERS = frozenset(
    {"list", "tuple", "iter", "enumerate", "zip", "join", "next", "fromkeys"}
)

#: Attribute names the project guarantees to be sets (degraded-view fields).
_KNOWN_SET_ATTRIBUTES = frozenset({"failed_links", "failed_nodes"})

_SET_ANNOTATION_RE = re.compile(
    r"^(typing\.)?(Set|FrozenSet|MutableSet|AbstractSet|set|frozenset)\b"
)


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation) if hasattr(ast, "unparse") else ""
    return bool(_SET_ANNOTATION_RE.match(text.strip()))


class _SetTracker:
    """Track which plain names are definitely sets, per function scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in {"set", "frozenset"}:
                return True
            if name in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            } and isinstance(node.func, ast.Attribute):
                return self.is_set_expression(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expression(node.left) or self.is_set_expression(
                node.right
            )
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in _KNOWN_SET_ATTRIBUTES
        return False

    def learn_assignment(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and self.is_set_expression(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and self.is_set_expression(node.value)
            ):
                self.set_names.add(node.target.id)

    def learn_parameters(self, node: ast.AST) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        arguments = node.args
        for argument in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            if _annotation_is_set(argument.annotation):
                self.set_names.add(argument.arg)


@register_rule
class UnorderedIterationRule(Rule):
    code = "DET002"
    summary = (
        "iteration order of an unordered set escapes (loop/comprehension/"
        "list/tuple/zip/join) without sorted()"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        # One pass per function scope (plus module top level) so local
        # set-ness does not leak across functions.
        scopes: List[Tuple[ast.AST, _SetTracker]] = []
        module_tracker = _SetTracker()
        scopes.append((module.tree, module_tracker))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tracker = _SetTracker()
                tracker.learn_parameters(node)
                scopes.append((node, tracker))
        for scope_root, tracker in scopes:
            yield from self._check_scope(module, scope_root, tracker)

    def _direct_children(self, scope_root: ast.AST) -> Iterator[ast.AST]:
        """Walk the scope but do not descend into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope_root))
        while stack:
            node = stack.pop(0)
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))

    def _check_scope(
        self, module: ModuleContext, scope_root: ast.AST, tracker: _SetTracker
    ) -> Iterator[Violation]:
        nodes = list(self._direct_children(scope_root))
        for node in nodes:  # learn assignments first: order-independent result
            tracker.learn_assignment(node)
        for node in nodes:
            yield from self._check_node(module, node, tracker)

    def _message(self, node: ast.AST, how: str) -> str:
        described = ast.unparse(node) if hasattr(ast, "unparse") else "set"
        if len(described) > 40:
            described = described[:37] + "..."
        return (
            f"iteration order of unordered set {described!r} escapes via {how}; "
            f"wrap it in sorted() to fix the order"
        )

    def _check_node(
        self, module: ModuleContext, node: ast.AST, tracker: _SetTracker
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if tracker.is_set_expression(node.iter):
                yield module.violation(node.iter, self.code, self._message(node.iter, "a for-loop"))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for generator in node.generators:
                if tracker.is_set_expression(generator.iter):
                    # A set comprehension produces another unordered set, so
                    # its own draw order never escapes.
                    if isinstance(node, ast.SetComp):
                        continue
                    yield module.violation(
                        generator.iter,
                        self.code,
                        self._message(generator.iter, "a comprehension"),
                    )
        elif isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in _ORDER_EXPOSING_CONSUMERS:
                for argument in node.args:
                    if tracker.is_set_expression(argument):
                        yield module.violation(
                            argument,
                            self.code,
                            self._message(argument, f"{name}()"),
                        )
        elif isinstance(node, ast.Starred) and tracker.is_set_expression(node.value):
            yield module.violation(
                node.value, self.code, self._message(node.value, "unpacking")
            )


# --------------------------------------------------------------------------
# DET003 — RNG constructed without a seed
# --------------------------------------------------------------------------


@register_rule
class UnseededGeneratorRule(Rule):
    code = "DET003"
    summary = (
        "np.random RNG constructed without a seed (default_rng()/SeedSequence()/"
        "bit generators with no argument fall back to OS entropy)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        imports = _ImportTracker()
        imports.visit(module.tree)
        for node in _iter_calls(module.tree):
            dotted = _resolve_dotted(call_name(node.func), imports)
            if dotted is None:
                continue
            function = dotted.rsplit(".", 1)[-1]
            if function not in _SEEDED_CONSTRUCTORS:
                continue
            if not (dotted.startswith("numpy.random") or dotted == function):
                continue
            seed_keywords = [
                keyword for keyword in node.keywords if keyword.arg == "seed"
            ]
            candidates: List[ast.AST] = list(node.args[:1]) + [
                keyword.value for keyword in seed_keywords
            ]
            if not candidates:
                yield module.violation(
                    node,
                    self.code,
                    f"{function}() without a seed draws OS entropy; pass a seed "
                    f"derived from a config/spec field",
                )
                continue
            for candidate in candidates:
                if isinstance(candidate, ast.Constant) and candidate.value is None:
                    yield module.violation(
                        node,
                        self.code,
                        f"{function}(None) is explicitly unseeded; pass a seed "
                        f"derived from a config/spec field",
                    )


# --------------------------------------------------------------------------
# MP001 — pickle-unsafe callables crossing a process boundary
# --------------------------------------------------------------------------

#: Attribute methods that submit a positional callable to a pool.
_POOL_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)

#: Keyword arguments that carry a callable across a process boundary.
_CALLABLE_KEYWORDS = frozenset({"target", "initializer", "func"})


@register_rule
class PickleUnsafeCallableRule(Rule):
    code = "MP001"
    summary = (
        "pickle-unsafe callable (lambda / nested function / self-bound method) "
        "submitted to a worker pool or Process"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        nested = self._nested_callable_names(module.tree)
        for node in _iter_calls(module.tree):
            for candidate, context in self._submitted_callables(node):
                problem = self._problem(candidate, nested)
                if problem is not None:
                    yield module.violation(
                        candidate,
                        self.code,
                        f"{problem} handed to {context} cannot be pickled by a "
                        f"spawn-based worker; move it to module level",
                    )

    def _nested_callable_names(self, tree: ast.Module) -> FrozenSet[str]:
        """Names of functions defined inside another function, plus names
        bound to lambdas anywhere."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        names.add(child.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return frozenset(names)

    def _submitted_callables(
        self, node: ast.Call
    ) -> Iterator[Tuple[ast.AST, str]]:
        method = terminal_name(node.func)
        if (
            isinstance(node.func, ast.Attribute)
            and method in _POOL_SUBMIT_METHODS
            and self._looks_like_pool(node.func.value)
            and node.args
        ):
            yield node.args[0], f"{method}()"
        constructor = terminal_name(node.func)
        for keyword in node.keywords:
            if keyword.arg in _CALLABLE_KEYWORDS:
                if keyword.arg == "func" and constructor not in _POOL_SUBMIT_METHODS:
                    continue
                yield keyword.value, f"{constructor}({keyword.arg}=...)"

    def _looks_like_pool(self, receiver: ast.AST) -> bool:
        name = (terminal_name(receiver) or "").lower()
        return any(hint in name for hint in ("pool", "executor", "worker"))

    def _problem(
        self, candidate: ast.AST, nested: FrozenSet[str]
    ) -> Optional[str]:
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name) and candidate.id in nested:
            return f"nested function {candidate.id!r}"
        if (
            isinstance(candidate, ast.Attribute)
            and isinstance(candidate.value, ast.Name)
            and candidate.value.id == "self"
        ):
            return f"bound method self.{candidate.attr}"
        if isinstance(candidate, ast.Call):
            inner = terminal_name(candidate.func)
            if inner == "partial" and candidate.args:
                return self._problem(candidate.args[0], nested)
        return None


# --------------------------------------------------------------------------
# SIG001 — content-signature completeness
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldCoverageSpec:
    """One audited (signature function ← source class) pair.

    ``excluded`` maps field names that are *deliberately* not hashed to the
    one-line justification recorded here; the rule re-reports an exclusion
    that the function in fact references (a stale exclusion is as wrong as
    a missing field).
    """

    function_module: str        #: module path suffix, e.g. "repro/paths/cache.py"
    function_name: str          #: plain or Class.method name
    class_module: str
    class_name: str
    excluded: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class FrozenKeySpec:
    """A class used verbatim as a cache-key component: must stay a frozen
    dataclass so equality/hash cover every field by construction."""

    class_module: str
    class_name: str


#: The project's cache-key audit table.  PathSetCache and CompiledModelCache
#: key on topology_signature (× TrafficModelConfig); ResultCache keys on
#: CellSpec.canonical().  Every behaviour-affecting field of the source
#: classes must be hashed; exclusions carry their safety argument.
PROJECT_SIGNATURE_SPECS: Tuple[object, ...] = (
    FieldCoverageSpec(
        function_module="repro/paths/cache.py",
        function_name="topology_signature",
        class_module="repro/topology/graph.py",
        class_name="Link",
        excluded={
            "index": "assigned from insertion order, which the per-link hash "
            "loop already covers ordinally",
            "metadata": "free-form annotations; no routing/model/optimizer "
            "code path reads link metadata",
        },
    ),
    FieldCoverageSpec(
        function_module="repro/paths/cache.py",
        function_name="topology_signature",
        class_module="repro/topology/graph.py",
        class_name="Node",
        excluded={
            "latitude": "coordinates only shape delays at topology build "
            "time; the derived per-link delay_s is hashed",
            "longitude": "coordinates only shape delays at topology build "
            "time; the derived per-link delay_s is hashed",
            "metadata": "free-form annotations; no routing/model/optimizer "
            "code path reads node metadata",
        },
    ),
    FieldCoverageSpec(
        function_module="repro/runner/spec.py",
        function_name="CellSpec.canonical",
        class_module="repro/runner/spec.py",
        class_name="CellSpec",
    ),
    FrozenKeySpec(
        class_module="repro/trafficmodel/waterfill.py",
        class_name="TrafficModelConfig",
    ),
    FrozenKeySpec(
        class_module="repro/paths/policy.py",
        class_name="PathPolicy",
    ),
)


def _module_matches(path: str, suffix: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(suffix)


def _class_field_names(class_node: ast.ClassDef) -> List[str]:
    """Field names of a dataclass (annotated class attributes) or, failing
    that, the ``self.X = ...`` assignments of ``__init__``."""
    annotated = [
        statement.target.id
        for statement in class_node.body
        if isinstance(statement, ast.AnnAssign)
        and isinstance(statement.target, ast.Name)
        and not statement.target.id.startswith("_")
    ]
    if annotated:
        return annotated
    fields: List[str] = []
    for statement in class_node.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "__init__"
        ):
            for child in ast.walk(statement):
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Attribute)
                    and isinstance(child.targets[0].value, ast.Name)
                    and child.targets[0].value.id == "self"
                    and not child.targets[0].attr.startswith("_")
                ):
                    if child.targets[0].attr not in fields:
                        fields.append(child.targets[0].attr)
    return fields


def _referenced_names(function_node: ast.AST) -> Set[str]:
    """Every identifier a signature function can possibly read a field by:
    attribute accesses, plain names, and string literals (getattr keys)."""
    names: Set[str] = set()
    for node in ast.walk(function_node):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


def _is_frozen_dataclass(class_node: ast.ClassDef) -> bool:
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call) and terminal_name(
            decorator.func
        ) == "dataclass":
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


@register_rule
class SignatureCompletenessRule(Rule):
    code = "SIG001"
    summary = (
        "cache-key signature functions must hash every behaviour-affecting "
        "field of the classes they fingerprint (stale-cache bug class)"
    )
    scope = PROJECT_SCOPE

    def __init__(self, specs: Optional[Sequence[object]] = None) -> None:
        self.specs: Tuple[object, ...] = tuple(
            specs if specs is not None else PROJECT_SIGNATURE_SPECS
        )

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Violation]:
        for spec in self.specs:
            if isinstance(spec, FieldCoverageSpec):
                yield from self._check_coverage(spec, modules)
            elif isinstance(spec, FrozenKeySpec):
                yield from self._check_frozen(spec, modules)

    # -- helpers

    def _find_class(
        self, modules: Sequence[ModuleContext], module_suffix: str, name: str
    ) -> Optional[Tuple[ModuleContext, ast.ClassDef]]:
        for module in modules:
            if not _module_matches(module.path, module_suffix):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return module, node
        return None

    def _find_function(
        self, modules: Sequence[ModuleContext], module_suffix: str, dotted: str
    ) -> Optional[Tuple[ModuleContext, ast.AST]]:
        class_name, _, method_name = dotted.rpartition(".")
        for module in modules:
            if not _module_matches(module.path, module_suffix):
                continue
            if class_name:
                found = self._find_class(
                    [module], module_suffix, class_name
                )
                if found is None:
                    continue
                for node in found[1].body:
                    if (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name == method_name
                    ):
                        return module, node
            else:
                for node in module.tree.body:
                    if (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name == dotted
                    ):
                        return module, node
        return None

    def _check_coverage(
        self, spec: FieldCoverageSpec, modules: Sequence[ModuleContext]
    ) -> Iterator[Violation]:
        relevant = [
            module
            for module in modules
            if _module_matches(module.path, spec.function_module)
            or _module_matches(module.path, spec.class_module)
        ]
        if not relevant:
            return  # the audited files are outside the analyzed paths
        class_found = self._find_class(modules, spec.class_module, spec.class_name)
        function_found = self._find_function(
            modules, spec.function_module, spec.function_name
        )
        if class_found is None or function_found is None:
            # Only complain when the analyzed paths include the file that
            # should contain the missing definition — analysing a subtree
            # must not produce spurious config-rot findings.
            missing_suffix = (
                spec.class_module if class_found is None else spec.function_module
            )
            for module in modules:
                if _module_matches(module.path, missing_suffix):
                    missing = (
                        f"class {spec.class_name}"
                        if class_found is None
                        else f"function {spec.function_name}"
                    )
                    yield Violation(
                        path=module.path,
                        line=1,
                        column=1,
                        code=self.code,
                        message=(
                            f"signature audit table names {missing} in "
                            f"{missing_suffix} but it was not found; update "
                            f"PROJECT_SIGNATURE_SPECS"
                        ),
                    )
                    break
            return
        function_module, function_node = function_found
        _, class_node = class_found
        fields = _class_field_names(class_node)
        referenced = _referenced_names(function_node)
        anchor_line = getattr(function_node, "lineno", 1)
        for field_name in fields:
            if field_name in spec.excluded:
                continue
            if field_name not in referenced:
                yield Violation(
                    path=function_module.path,
                    line=anchor_line,
                    column=1,
                    code=self.code,
                    message=(
                        f"{spec.function_name} does not hash field "
                        f"{spec.class_name}.{field_name}; cached entries will "
                        f"be served stale when it changes (add it to the "
                        f"signature or record a justified exclusion in "
                        f"PROJECT_SIGNATURE_SPECS)"
                    ),
                )
        for field_name in spec.excluded:
            if field_name in fields and field_name in referenced:
                yield Violation(
                    path=function_module.path,
                    line=anchor_line,
                    column=1,
                    code=self.code,
                    message=(
                        f"stale exclusion: {spec.function_name} now references "
                        f"{spec.class_name}.{field_name}, which the audit "
                        f"table excludes; drop the exclusion"
                    ),
                )

    def _check_frozen(
        self, spec: FrozenKeySpec, modules: Sequence[ModuleContext]
    ) -> Iterator[Violation]:
        found = self._find_class(modules, spec.class_module, spec.class_name)
        if found is None:
            return
        module, class_node = found
        if not _is_frozen_dataclass(class_node):
            yield Violation(
                path=module.path,
                line=class_node.lineno,
                column=1,
                code=self.code,
                message=(
                    f"{spec.class_name} is used verbatim as a cache-key "
                    f"component and must stay a @dataclass(frozen=True) so "
                    f"equality and hash cover every field"
                ),
            )


# --------------------------------------------------------------------------
# EXC001 — silently swallowed exceptions
# --------------------------------------------------------------------------

#: Handler types that must never swallow silently.  FileNotFoundError alone
#: is a legitimate cache miss and deliberately absent.
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})
_NOISY_IO_NAMES = frozenset(
    {"OSError", "IOError", "EnvironmentError", "JSONDecodeError"}
)

#: A call whose terminal name matches this is "recording" the failure.
_RECORDING_CALL_RE = re.compile(
    r"log|warn|print|error|record|report|debug|info|exception|critical|fail",
    re.IGNORECASE,
)

#: An assignment target matching this counts as an error record / counter.
_RECORDING_TARGET_RE = re.compile(
    r"error|corrupt|skip|drop|fail|invalid|stale", re.IGNORECASE
)


@register_rule
class SwallowedExceptionRule(Rule):
    code = "EXC001"
    summary = (
        "broad or I/O exception handler swallows silently: re-raise, use the "
        "exception, log, or record an error"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            matched = self._matched_types(node.type)
            if not matched:
                continue
            if self._is_silent(node):
                yield module.violation(
                    node,
                    self.code,
                    f"handler for {', '.join(sorted(matched))} swallows the "
                    f"exception without re-raising, logging, or recording an "
                    f"error",
                )

    def _matched_types(self, type_node: Optional[ast.AST]) -> List[str]:
        if type_node is None:
            return ["bare except"]
        candidates = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        matched: List[str] = []
        for candidate in candidates:
            name = terminal_name(candidate)
            if name in _BROAD_EXCEPTION_NAMES or name in _NOISY_IO_NAMES:
                matched.append(str(name))
        return matched

    def _is_silent(self, handler: ast.ExceptHandler) -> bool:
        bound_name = handler.name
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return False
            if (
                bound_name
                and isinstance(node, ast.Name)
                and node.id == bound_name
                and isinstance(node.ctx, ast.Load)
            ):
                return False
            if isinstance(node, ast.Call):
                name = terminal_name(node.func) or ""
                if _RECORDING_CALL_RE.search(name):
                    return False
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    target_name = terminal_name(target) or ""
                    if _RECORDING_TARGET_RE.search(target_name):
                        return False
        return True
