"""Project configuration for the interprocedural checkers (``analysis.toml``).

The intra-file rules are self-contained, but the whole-program rules need
project-level declarations that do not belong in code:

* ``[analysis.async_ready]`` — modules the ROADMAP's asyncio-daemon work
  wants to run inside an event loop.  ASY101 proves (at lint time) that no
  blocking call is transitively reachable from them, so the migration
  starts from a machine-checked inventory instead of hope.
* ``[analysis.dead_code]`` — the package prefixes DEAD101 audits and the
  *reference roots* (tests, benchmarks, examples) whose usages count as
  liveness even though those trees are not themselves linted.

The file is optional: an absent ``analysis.toml`` yields the defaults below,
so analyzing a bare checkout (or the fixtures corpus) never requires one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on the 3.9 CI matrix leg
    tomllib = None  # type: ignore[assignment]

#: Default file name probed in the working directory.
CONFIG_FILENAME = "analysis.toml"


class AnalysisConfigError(ReproError):
    """Raised when ``analysis.toml`` is present but malformed."""


@dataclass(frozen=True)
class AnalysisConfig:
    """Parsed interprocedural-analysis configuration."""

    #: Modules whose reachable call trees must be free of blocking calls.
    async_ready_modules: Tuple[str, ...] = ()
    #: Dotted package prefixes DEAD101 audits (empty disables the rule).
    dead_code_packages: Tuple[str, ...] = ()
    #: Directories (relative to the config file) whose references keep
    #: public functions alive for DEAD101.
    reference_roots: Tuple[str, ...] = ()
    #: Directory the config was loaded from (resolves reference roots).
    base_directory: Path = field(default_factory=Path)

    def reference_root_paths(self) -> List[Path]:
        """Existing reference-root directories, resolved against the config."""
        found: List[Path] = []
        for root in self.reference_roots:
            candidate = self.base_directory / root
            if candidate.is_dir():
                found.append(candidate)
        return found


def _string_list(value: object, where: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise AnalysisConfigError(f"{where} must be a list of strings")
    return tuple(value)


_SECTION_RE = re.compile(r"^\[(?P<name>[A-Za-z0-9_.\-]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_\-]+)\s*=\s*(?P<value>.+)$")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_toml_subset(text: str, where: str) -> Dict[str, Any]:
    """Tiny fallback parser for the config's TOML subset (Python < 3.11).

    Supports ``[dotted.section]`` headers and ``key = [ "str", ... ]`` /
    ``key = "str"`` assignments (lists may span lines).  That is the whole
    grammar ``analysis.toml`` uses, so the 3.9 test matrix does not need the
    stdlib ``tomllib``.
    """
    document: Dict[str, Any] = {}
    section: Dict[str, Any] = document
    pending_key: Optional[str] = None
    pending_value = ""
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip() if '"' not in raw_line else raw_line.strip()
        if pending_key is not None:
            pending_value += " " + line
            if "]" in line:
                section[pending_key] = _STRING_RE.findall(pending_value)
                pending_key, pending_value = None, ""
            continue
        if not line or line.startswith("#"):
            continue
        section_match = _SECTION_RE.match(line)
        if section_match is not None:
            section = document
            for part in section_match.group("name").split("."):
                section = section.setdefault(part, {})
            continue
        key_match = _KEY_RE.match(line)
        if key_match is None:
            raise AnalysisConfigError(f"{where}: cannot parse line {line!r}")
        key, value = key_match.group("key"), key_match.group("value").strip()
        if value.startswith("["):
            if "]" in value:
                section[key] = _STRING_RE.findall(value)
            else:
                pending_key, pending_value = key, value
        else:
            strings = _STRING_RE.findall(value)
            if len(strings) != 1:
                raise AnalysisConfigError(
                    f"{where}: unsupported value for {key!r}: {value!r}"
                )
            section[key] = strings[0]
    if pending_key is not None:
        raise AnalysisConfigError(f"{where}: unterminated list for {pending_key!r}")
    return document


def load_config(path: Optional[Path] = None) -> AnalysisConfig:
    """Load ``analysis.toml`` from *path* (default: probe the cwd).

    A missing file is not an error — the interprocedural rules then run
    with their built-in defaults (no async-ready modules, no dead-code
    packages), which keeps fixture analysis config-free.
    """
    probe = path if path is not None else Path(CONFIG_FILENAME)
    if not probe.is_file():
        return AnalysisConfig()
    if tomllib is not None:
        with probe.open("rb") as handle:
            try:
                document = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise AnalysisConfigError(f"{probe}: {error}") from error
    else:  # pragma: no cover - exercised on the 3.9 CI matrix leg
        document = _parse_toml_subset(
            probe.read_text(encoding="utf-8"), str(probe)
        )
    section = document.get("analysis", {})
    if not isinstance(section, dict):
        raise AnalysisConfigError(f"{probe}: [analysis] must be a table")
    async_ready = section.get("async_ready", {})
    dead_code = section.get("dead_code", {})
    if not isinstance(async_ready, dict) or not isinstance(dead_code, dict):
        raise AnalysisConfigError(
            f"{probe}: [analysis.async_ready] and [analysis.dead_code] "
            f"must be tables"
        )
    return AnalysisConfig(
        async_ready_modules=_string_list(
            async_ready.get("modules", []), "[analysis.async_ready] modules"
        ),
        dead_code_packages=_string_list(
            dead_code.get("packages", []), "[analysis.dead_code] packages"
        ),
        reference_roots=_string_list(
            dead_code.get("reference_roots", []),
            "[analysis.dead_code] reference_roots",
        ),
        base_directory=probe.parent,
    )
