"""Static analysis for reproducibility invariants (``python -m repro.analysis``).

An AST-based linter with project-specific rules, in three tiers:

* per-file — unseeded entropy (DET001), order-escaping set iteration
  (DET002), unseeded RNG construction (DET003), pickle-unsafe worker
  dispatch (MP001), silently swallowed exceptions (EXC001);
* project — cache-signature completeness (SIG001);
* whole-program (call graph + forward taint over per-function summaries) —
  seed provenance (SEED101), cache purity (PURE101), async readiness
  (ASY101), worker-safe module state (MP101), dead public functions
  (DEAD101).

Inline suppressions use ``# repro: allow[CODE] — justification`` and are
themselves checked for staleness (SUP001) and missing justifications
(SUP002).

See README «Static analysis» for the catalogue and how to add a rule.
"""

from repro.analysis.base import (
    FILE_SCOPE,
    PROGRAM_SCOPE,
    PROJECT_SCOPE,
    ModuleContext,
    Rule,
    Violation,
)
from repro.analysis.callgraph import (
    CallGraph,
    ProgramModel,
    build_call_graph,
    build_program_model,
)
from repro.analysis.config import AnalysisConfig, AnalysisConfigError, load_config
from repro.analysis.summaries import (
    ModuleSummary,
    SummaryCache,
    module_name_for,
    summarize_module,
)
from repro.analysis.registry import (
    AnalysisError,
    build_rules,
    get_rule,
    register_rule,
    rule_codes,
)
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.walker import (
    AnalysisReport,
    OrphanSuppression,
    analyze_paths,
    build_program,
    discover_files,
)

__all__ = [
    "FILE_SCOPE",
    "PROGRAM_SCOPE",
    "PROJECT_SCOPE",
    "AnalysisConfig",
    "AnalysisConfigError",
    "AnalysisError",
    "AnalysisReport",
    "CallGraph",
    "ModuleContext",
    "ModuleSummary",
    "OrphanSuppression",
    "ProgramModel",
    "Rule",
    "SummaryCache",
    "Suppression",
    "Violation",
    "analyze_paths",
    "apply_suppressions",
    "build_call_graph",
    "build_program",
    "build_program_model",
    "build_rules",
    "discover_files",
    "get_rule",
    "load_config",
    "module_name_for",
    "parse_suppressions",
    "register_rule",
    "rule_codes",
    "summarize_module",
]
