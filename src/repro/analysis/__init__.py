"""Static analysis for reproducibility invariants (``python -m repro.analysis``).

An AST-based linter with project-specific rules: unseeded entropy (DET001),
order-escaping set iteration (DET002), unseeded RNG construction (DET003),
pickle-unsafe worker dispatch (MP001), cache-signature completeness
(SIG001), and silently swallowed exceptions (EXC001).  Inline suppressions
use ``# repro: allow[CODE] — justification`` and are themselves checked for
staleness (SUP001) and missing justifications (SUP002).

See README «Static analysis» for the catalogue and how to add a rule.
"""

from repro.analysis.base import (
    FILE_SCOPE,
    PROJECT_SCOPE,
    ModuleContext,
    Rule,
    Violation,
)
from repro.analysis.registry import (
    AnalysisError,
    build_rules,
    get_rule,
    register_rule,
    rule_codes,
)
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.walker import AnalysisReport, analyze_paths, discover_files

__all__ = [
    "FILE_SCOPE",
    "PROJECT_SCOPE",
    "AnalysisError",
    "AnalysisReport",
    "ModuleContext",
    "Rule",
    "Suppression",
    "Violation",
    "analyze_paths",
    "apply_suppressions",
    "build_rules",
    "discover_files",
    "get_rule",
    "parse_suppressions",
    "register_rule",
    "rule_codes",
]
