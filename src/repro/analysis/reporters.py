"""Render an :class:`~repro.analysis.walker.AnalysisReport` for humans or tools."""

from __future__ import annotations

import json
from typing import IO

from repro.analysis.walker import AnalysisReport


def render_text(report: AnalysisReport, stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per violation plus a summary."""
    for violation in report.violations:
        stream.write(violation.render() + "\n")
    counts = report.to_dict()["counts"]
    if report.violations:
        summary = ", ".join(f"{code}: {count}" for code, count in counts.items())  # type: ignore[union-attr]
        stream.write(
            f"\n{len(report.violations)} violation(s) in "
            f"{report.files_analyzed} file(s) ({summary})\n"
        )
    else:
        stream.write(
            f"clean: {report.files_analyzed} file(s), "
            f"{len(report.rules_run)} rule(s)\n"
        )


def render_json(report: AnalysisReport, stream: IO[str]) -> None:
    """The full report as one JSON document (stable key order)."""
    json.dump(report.to_dict(), stream, indent=2, sort_keys=True)
    stream.write("\n")


#: Rule metadata for codes that are not registry classes.
_META_RULE_SUMMARIES = {
    "SUP001": "orphan suppression: allow[...] comment with no matching violation",
    "SUP002": "suppression without a one-line justification",
    "PARSE001": "file does not parse",
}


def render_sarif(report: AnalysisReport, stream: IO[str]) -> None:
    """SARIF 2.1.0 — GitHub code-scanning uploads annotate PR diffs with it."""
    from repro.analysis.registry import AnalysisError, get_rule

    rule_ids = sorted(
        set(report.rules_run)
        | {violation.code for violation in report.violations}
    )
    rules = []
    for code in rule_ids:
        if code in _META_RULE_SUMMARIES:
            summary = _META_RULE_SUMMARIES[code]
        else:
            try:
                summary = get_rule(code).summary
            except AnalysisError:
                summary = code
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results = [
        {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column,
                        },
                    }
                }
            ],
        }
        for violation in report.violations
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro-analysis",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
