"""Render an :class:`~repro.analysis.walker.AnalysisReport` for humans or tools."""

from __future__ import annotations

import json
from typing import IO

from repro.analysis.walker import AnalysisReport


def render_text(report: AnalysisReport, stream: IO[str]) -> None:
    """One ``path:line:col: CODE message`` line per violation plus a summary."""
    for violation in report.violations:
        stream.write(violation.render() + "\n")
    counts = report.to_dict()["counts"]
    if report.violations:
        summary = ", ".join(f"{code}: {count}" for code, count in counts.items())  # type: ignore[union-attr]
        stream.write(
            f"\n{len(report.violations)} violation(s) in "
            f"{report.files_analyzed} file(s) ({summary})\n"
        )
    else:
        stream.write(
            f"clean: {report.files_analyzed} file(s), "
            f"{len(report.rules_run)} rule(s)\n"
        )


def render_json(report: AnalysisReport, stream: IO[str]) -> None:
    """The full report as one JSON document (stable key order)."""
    json.dump(report.to_dict(), stream, indent=2, sort_keys=True)
    stream.write("\n")


REPORTERS = {"text": render_text, "json": render_json}
