"""Checker registry.

Rules self-register at import time via :func:`register_rule`; the walker and
the CLI only ever talk to the registry, so adding a rule is: write the class
in :mod:`repro.analysis.rules` (or any imported module), decorate it, done.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.analysis.base import Rule
from repro.exceptions import ReproError


class AnalysisError(ReproError):
    """Raised for analysis-configuration mistakes (unknown rule, bad path)."""


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to the global registry."""
    code = rule_class.code
    if not code:
        raise AnalysisError(f"rule {rule_class.__name__} has no code")
    if code in _RULES and _RULES[code] is not rule_class:
        raise AnalysisError(f"duplicate rule code {code!r}")
    _RULES[code] = rule_class
    return rule_class


def _ensure_loaded() -> None:
    # Import for the registration side effect; idempotent.
    import repro.analysis.iprules  # noqa: F401
    import repro.analysis.rules  # noqa: F401


def rule_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    _ensure_loaded()
    return sorted(_RULES)


def get_rule(code: str) -> Type[Rule]:
    """The rule class registered under *code*."""
    _ensure_loaded()
    try:
        return _RULES[code]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {code!r}; available: {', '.join(sorted(_RULES))}"
        ) from None


def build_rules(
    select: Optional[Sequence[str]] = None,
    factory: Optional[Callable[[Type[Rule]], Rule]] = None,
) -> List[Rule]:
    """Instantiate the selected rules (all registered rules by default).

    ``select`` filters by code; unknown codes raise :class:`AnalysisError`
    so a typo in ``--select`` fails loudly instead of silently checking
    nothing.
    """
    _ensure_loaded()
    codes = rule_codes() if select is None else list(select)
    make = factory or (lambda rule_class: rule_class())
    return [make(get_rule(code)) for code in codes]
