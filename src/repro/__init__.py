"""FUBAR: Flow Utility Based Routing — a full Python reproduction.

This package reimplements the system described in

    Nikola Gvozdiev, Brad Karp, Mark Handley.
    "FUBAR: Flow Utility Based Routing."  HotNets-XIII, 2014.

from scratch: the utility model, the TCP-like traffic model, congestion-aware
path generation, the greedy flow-allocation optimizer with its local-optimum
escape, the baselines it is compared against, a simulated SDN substrate, and
the experiment harness that regenerates every figure in the paper's
evaluation.

Quickstart::

    from repro import Fubar, hurricane_electric_core, paper_traffic_matrix

    network = hurricane_electric_core()
    traffic = paper_traffic_matrix(network, seed=0)
    plan = Fubar(network).optimize(traffic)
    print(plan.summary())

See README.md for the architecture overview and DESIGN.md for the full
system inventory.
"""

from repro.core import (
    Fubar,
    FubarConfig,
    FubarOptimizer,
    FubarPlan,
    FubarResult,
    RoutingTable,
    optimize,
)
from repro.dynamics import (
    ControlLoopConfig,
    build_process,
    run_control_loop,
)
from repro.topology import (
    Network,
    abilene,
    geant,
    hurricane_electric_core,
    provisioned_core,
    reduced_core,
    triangle_topology,
    underprovisioned_core,
)
from repro.traffic import (
    Aggregate,
    TrafficMatrix,
    paper_traffic_matrix,
)
from repro.trafficmodel import TrafficModel, evaluate_bundles
from repro.utility import (
    BandwidthComponent,
    DelayComponent,
    PriorityWeights,
    UtilityFunction,
    bulk_transfer_utility,
    large_transfer_utility,
    real_time_utility,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "BandwidthComponent",
    "DelayComponent",
    "Fubar",
    "FubarConfig",
    "FubarOptimizer",
    "FubarPlan",
    "FubarResult",
    "Network",
    "PriorityWeights",
    "RoutingTable",
    "TrafficMatrix",
    "TrafficModel",
    "UtilityFunction",
    "ControlLoopConfig",
    "__version__",
    "abilene",
    "build_process",
    "bulk_transfer_utility",
    "evaluate_bundles",
    "geant",
    "hurricane_electric_core",
    "large_transfer_utility",
    "optimize",
    "paper_traffic_matrix",
    "provisioned_core",
    "real_time_utility",
    "reduced_core",
    "run_control_loop",
    "triangle_topology",
    "underprovisioned_core",
]
