"""Exception hierarchy for the FUBAR reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  The more
specific subclasses mirror the major subsystems described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class TopologyError(ReproError):
    """Raised when a network topology is malformed or violates an invariant."""


class UnknownNodeError(TopologyError):
    """Raised when a node name is not present in the network."""

    def __init__(self, node: str) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class UnknownLinkError(TopologyError):
    """Raised when a link identifier is not present in the network."""

    def __init__(self, link: object) -> None:
        super().__init__(f"unknown link: {link!r}")
        self.link = link


class DuplicateNodeError(TopologyError):
    """Raised when a node with the same name is added twice."""

    def __init__(self, node: str) -> None:
        super().__init__(f"duplicate node: {node!r}")
        self.node = node


class DuplicateLinkError(TopologyError):
    """Raised when a link between the same pair of nodes is added twice."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"duplicate link: {src!r} -> {dst!r}")
        self.src = src
        self.dst = dst


class UtilityError(ReproError):
    """Raised when a utility function is malformed (non-monotone, out of range...)."""


class TrafficError(ReproError):
    """Raised for malformed traffic matrices or aggregates."""


class PathError(ReproError):
    """Raised when a requested path cannot be built or does not exist."""


class NoPathError(PathError):
    """Raised when no policy-compliant path exists between two nodes."""

    def __init__(self, src: str, dst: str, reason: str = "") -> None:
        message = f"no path from {src!r} to {dst!r}"
        if reason:
            message = f"{message} ({reason})"
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.reason = reason


class TrafficModelError(ReproError):
    """Raised when the progressive-filling traffic model is given invalid input."""


class AllocationError(ReproError):
    """Raised when an allocation state update is inconsistent."""


class OptimizationError(ReproError):
    """Raised when the FUBAR optimizer is configured or driven incorrectly."""


class MeasurementError(ReproError):
    """Raised by the simulated SDN measurement pipeline."""


class ExperimentError(ReproError):
    """Raised by the experiment harness when a scenario is misconfigured."""


class DynamicsError(ReproError):
    """Raised by the dynamic control-loop subsystem (:mod:`repro.dynamics`)."""


class FailureError(ReproError):
    """Raised by the failure-resilience subsystem (:mod:`repro.failures`)."""


class ProvisioningError(ReproError):
    """Raised by the capacity-planning subsystem (:mod:`repro.provisioning`)."""


class ServiceError(ReproError):
    """Raised by the controller-as-a-service subsystem (:mod:`repro.service`)."""
