"""Per-aggregate path sets.

Paper §2.4: the optimizer keeps, for every aggregate, a small ordered set of
policy-compliant paths — the lowest-delay default plus alternatives added as
congestion is discovered ("approximately ten to fifteen paths in the path set
for each aggregate" after a few iterations).  :class:`PathSet` is that
container: insertion-ordered, duplicate-free, delay-aware.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import PathError
from repro.topology.graph import LinkId, Network, Path


class PathSet:
    """An ordered, duplicate-free collection of paths for one aggregate."""

    def __init__(self, network: Network, paths: Optional[Sequence[Path]] = None) -> None:
        self._network = network
        self._paths: List[Path] = []
        self._delays: Dict[Path, float] = {}
        self._links: Dict[Path, FrozenSet[LinkId]] = {}
        for path in paths or ():
            self.add(path)

    # ----------------------------------------------------------------- build

    def add(self, path: Sequence[str]) -> bool:
        """Add *path* (validated against the network); returns False if already present."""
        validated = self._network.validate_path(path)
        if validated in self._delays:
            return False
        self._paths.append(validated)
        self._delays[validated] = self._network.path_delay(validated)
        self._links[validated] = frozenset(zip(validated, validated[1:]))
        return True

    def add_many(self, paths: Sequence[Sequence[str]]) -> int:
        """Add several paths; returns how many were new."""
        return sum(1 for path in paths if self.add(path))

    # ---------------------------------------------------------------- access

    @property
    def paths(self) -> Tuple[Path, ...]:
        """All paths, in insertion order (the default path is always first)."""
        return tuple(self._paths)

    @property
    def default_path(self) -> Path:
        """The first path added — by convention the lowest-delay path."""
        if not self._paths:
            raise PathError("path set is empty")
        return self._paths[0]

    def delay_of(self, path: Sequence[str]) -> float:
        """Propagation delay of a member path in seconds."""
        key = tuple(path)
        if key not in self._delays:
            raise PathError(f"path {key!r} is not in the path set")
        return self._delays[key]

    def sorted_by_delay(self) -> Tuple[Path, ...]:
        """Member paths ordered from lowest to highest delay."""
        return tuple(sorted(self._paths, key=self._delays.__getitem__))

    def lowest_delay_path(self) -> Path:
        """The member path with the smallest propagation delay."""
        if not self._paths:
            raise PathError("path set is empty")
        return min(self._paths, key=self._delays.__getitem__)

    def links_of(self, path: Sequence[str]) -> FrozenSet[LinkId]:
        """The (cached) set of links a member path traverses."""
        key = tuple(path)
        if key not in self._links:
            raise PathError(f"path {key!r} is not in the path set")
        return self._links[key]

    def paths_avoiding(self, link_id: LinkId) -> Tuple[Path, ...]:
        """Member paths that do not traverse *link_id*."""
        return tuple(
            path for path in self._paths if link_id not in self._links[path]
        )

    def uses_link(self, link_id: LinkId) -> bool:
        """True when any member path traverses *link_id*."""
        return any(link_id in self._links[path] for path in self._paths)

    # --------------------------------------------------------------- dunders

    def __contains__(self, path: Sequence[str]) -> bool:
        return tuple(path) in self._delays

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:
        return f"PathSet(paths={len(self._paths)})"
