"""K-shortest simple paths (Yen's algorithm).

The FUBAR path generator normally asks only three targeted questions
(global / local / link-local alternatives), but the library also exposes a
classic k-shortest-paths enumeration: the upper-bound baseline and the
ablation benchmarks use it to explore what richer path sets would buy, and it
is generally useful to downstream users of the path substrate.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.exceptions import NoPathError, PathError
from repro.topology.graph import LinkId, Network, Path
from repro.paths.dijkstra import shortest_path_or_none


def k_shortest_paths(
    network: Network,
    source: str,
    destination: str,
    k: int,
) -> List[Path]:
    """Return up to *k* lowest-delay simple paths, best first (Yen's algorithm).

    Fewer than *k* paths are returned when the topology does not contain
    that many distinct simple paths.  Raises :class:`NoPathError` when the
    pair is disconnected and :class:`PathError` for invalid *k*.
    """
    if k < 1:
        raise PathError(f"k must be at least 1, got {k}")
    first = shortest_path_or_none(network, source, destination)
    if first is None:
        raise NoPathError(source, destination)

    accepted: List[Path] = [first]
    # Candidate heap holds (delay, path) so the best candidate pops first.
    candidates: List[Tuple[float, Path]] = []
    seen_candidates: Set[Path] = set()

    while len(accepted) < k:
        previous_path = accepted[-1]
        # Each node of the previous path (except the last) becomes a spur node.
        for spur_index in range(len(previous_path) - 1):
            spur_node = previous_path[spur_index]
            root_path = previous_path[: spur_index + 1]

            excluded_links: Set[LinkId] = set()
            for path in accepted:
                if len(path) > spur_index and path[: spur_index + 1] == root_path:
                    excluded_links.add((path[spur_index], path[spur_index + 1]))
            excluded_nodes = set(root_path[:-1])

            spur_path = shortest_path_or_none(
                network,
                spur_node,
                destination,
                excluded_links=frozenset(excluded_links),
                excluded_nodes=frozenset(excluded_nodes),
            )
            if spur_path is None:
                continue
            total_path = tuple(root_path[:-1]) + spur_path
            if len(set(total_path)) != len(total_path):
                continue
            if total_path in seen_candidates or total_path in accepted:
                continue
            seen_candidates.add(total_path)
            heapq.heappush(candidates, (network.path_delay(total_path), total_path))

        if not candidates:
            break
        _, best_candidate = heapq.heappop(candidates)
        accepted.append(best_candidate)

    return accepted


def k_shortest_paths_or_fewer(
    network: Network, source: str, destination: str, k: int
) -> List[Path]:
    """Like :func:`k_shortest_paths` but returns an empty list when disconnected."""
    try:
        return k_shortest_paths(network, source, destination, k)
    except NoPathError:
        return []


def path_diversity(paths: List[Path]) -> float:
    """Fraction of distinct links across a path list (1.0 = fully disjoint).

    A small helper used by the ablation benchmarks to characterize how
    different the generated alternatives really are.
    """
    if not paths:
        return 0.0
    all_links: List[LinkId] = []
    for path in paths:
        all_links.extend(zip(path, path[1:]))
    if not all_links:
        return 0.0
    return len(set(all_links)) / len(all_links)
