"""Congestion-aware alternative path generation.

Paper §2.4 resolves the path-selection catch-22 iteratively: run the traffic
model on the current path sets, and for every aggregate that experiences
congestion ask the path generator for three alternatives not already in its
path set:

1. a **global** path — the lowest-delay path avoiding *all* congested links,
2. a **local** path — the lowest-delay path avoiding the congested links
   *used by this aggregate*,
3. a **link-local** path — the lowest-delay path avoiding only the *most
   congested* link used by the aggregate.

The generator caches shortest-path queries keyed by (source, destination,
exclusion set) because the optimizer issues the same queries repeatedly while
working through a congested link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import PathError
from repro.paths.dijkstra import shortest_path_or_none
from repro.paths.ksp import k_shortest_paths_or_fewer
from repro.paths.pathset import PathSet
from repro.paths.policy import PathPolicy
from repro.topology.graph import LinkId, Network, Path


@dataclass(frozen=True)
class AlternativePaths:
    """The three candidate paths of §2.4; any of them may be None.

    ``global_path`` avoids every congested link, ``local_path`` avoids the
    congested links used by the aggregate, and ``link_local_path`` avoids
    only the most congested link used by the aggregate.
    """

    global_path: Optional[Path]
    local_path: Optional[Path]
    link_local_path: Optional[Path]

    def candidates(self) -> Tuple[Path, ...]:
        """The distinct non-None candidates, global first."""
        seen: List[Path] = []
        for path in (self.global_path, self.local_path, self.link_local_path):
            if path is not None and path not in seen:
                seen.append(path)
        return tuple(seen)

    def is_empty(self) -> bool:
        """True when no alternative could be found."""
        return not self.candidates()


class PathGenerator:
    """Produces lowest-delay and congestion-avoiding paths on one network.

    Parameters
    ----------
    network:
        The topology to generate paths on.
    policy:
        Base policy applied to every query (default: unrestricted).  The
        congestion-driven exclusions are layered on top of it.
    """

    def __init__(self, network: Network, policy: Optional[PathPolicy] = None) -> None:
        self.network = network
        self.policy = policy or PathPolicy.unrestricted()
        self._cache: Dict[Tuple[str, str, FrozenSet[LinkId]], Optional[Path]] = {}
        self._ksp_cache: Dict[Tuple[str, str, int], List[Path]] = {}

    # ----------------------------------------------------------- basic paths

    def lowest_delay_path(self, source: str, destination: str) -> Optional[Path]:
        """The policy-compliant lowest-delay path, or None when disconnected."""
        return self._query(source, destination, frozenset())

    def lowest_delay_path_avoiding(
        self,
        source: str,
        destination: str,
        excluded_links: AbstractSet[LinkId],
    ) -> Optional[Path]:
        """The policy-compliant lowest-delay path avoiding *excluded_links*."""
        return self._query(source, destination, frozenset(excluded_links))

    def k_shortest(self, source: str, destination: str, k: int) -> List[Path]:
        """Up to *k* policy-compliant lowest-delay paths (used by baselines/ablations).

        Results are cached per ``(source, destination, k)`` — Yen's algorithm
        dominates baseline construction, and the same queries repeat across
        cells sharing a topology.  Callers get a fresh list each time so the
        cached answer cannot be mutated in place.
        """
        cache_key = (source, destination, k)
        cached = self._ksp_cache.get(cache_key)
        if cached is None:
            paths = k_shortest_paths_or_fewer(self.network, source, destination, k)
            cached = [
                path for path in paths if self.policy.is_compliant(self.network, path)
            ]
            self._ksp_cache[cache_key] = cached
        return list(cached)

    # --------------------------------------------------- §2.4 alternatives

    def alternatives(
        self,
        source: str,
        destination: str,
        congested_links: AbstractSet[LinkId],
        aggregate_congested_links: AbstractSet[LinkId],
        most_congested_link: Optional[LinkId],
        existing_paths: Optional[PathSet] = None,
    ) -> AlternativePaths:
        """Return the global / local / link-local alternatives of §2.4.

        Parameters
        ----------
        congested_links:
            Every congested link in the network (for the global path).
        aggregate_congested_links:
            The congested links actually used by the aggregate's current
            bundles (for the local path).
        most_congested_link:
            The single most congested link used by the aggregate (for the
            link-local path).  May be None when the aggregate is uncongested.
        existing_paths:
            The aggregate's current path set; paths already present are not
            reported again ("three alternative different policy-compliant
            paths not currently in the path set").
        """
        global_path = self._novel(
            self._query(source, destination, frozenset(congested_links)),
            existing_paths,
        )
        local_path = self._novel(
            self._query(source, destination, frozenset(aggregate_congested_links)),
            existing_paths,
        )
        if most_congested_link is not None:
            link_local_path = self._novel(
                self._query(source, destination, frozenset({most_congested_link})),
                existing_paths,
            )
        else:
            link_local_path = None
        return AlternativePaths(
            global_path=global_path,
            local_path=local_path,
            link_local_path=link_local_path,
        )

    # ------------------------------------------------------------- internals

    def _novel(self, path: Optional[Path], existing: Optional[PathSet]) -> Optional[Path]:
        if path is None:
            return None
        if existing is not None and path in existing:
            return None
        return path

    def _query(
        self, source: str, destination: str, extra_exclusions: FrozenSet[LinkId]
    ) -> Optional[Path]:
        policy_links, policy_nodes = self.policy.exclusions()
        excluded_links = policy_links | extra_exclusions
        cache_key = (source, destination, excluded_links)
        if cache_key in self._cache:
            return self._cache[cache_key]
        path = shortest_path_or_none(
            self.network,
            source,
            destination,
            excluded_links=excluded_links,
            excluded_nodes=policy_nodes,
        )
        if path is not None and not self.policy.is_compliant(self.network, path):
            # The hop/delay ceilings cannot be pushed into Dijkstra; enforce
            # them as a post-filter.
            path = None
        self._cache[cache_key] = path
        return path

    def clear_cache(self) -> None:
        """Drop all cached shortest-path answers (e.g. after editing the network)."""
        self._cache.clear()
        self._ksp_cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of cached shortest-path queries (useful in performance tests)."""
        return len(self._cache)
