"""Path computation: shortest paths, k-shortest paths, policies and path sets."""

from repro.paths.dijkstra import (
    all_pairs_shortest_paths,
    path_exists,
    shortest_path,
    shortest_path_or_none,
    shortest_path_tree,
)
from repro.paths.cache import PathSetCache, topology_signature
from repro.paths.generator import AlternativePaths, PathGenerator
from repro.paths.ksp import k_shortest_paths, k_shortest_paths_or_fewer, path_diversity
from repro.paths.pathset import PathSet
from repro.paths.policy import PathPolicy

__all__ = [
    "AlternativePaths",
    "PathGenerator",
    "PathPolicy",
    "PathSet",
    "PathSetCache",
    "all_pairs_shortest_paths",
    "k_shortest_paths",
    "k_shortest_paths_or_fewer",
    "path_diversity",
    "path_exists",
    "shortest_path",
    "shortest_path_or_none",
    "shortest_path_tree",
    "topology_signature",
]
