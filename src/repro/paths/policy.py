"""Path policy constraints.

Paper §2.4 requires "policy compliant paths".  The policy model here covers
the constraints ISP operators typically express — forbidden nodes or links
(e.g. scrubbing-centre bypass, geo restrictions), a hop-count ceiling and a
delay ceiling — and is enforced both at generation time (exclusions are
pushed into the Dijkstra queries) and as a post-check on any externally
supplied path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import PathError
from repro.topology.graph import LinkId, Network, Path


@dataclass(frozen=True)
class PathPolicy:
    """Constraints a path must satisfy to be usable by an aggregate.

    Parameters
    ----------
    forbidden_nodes:
        Nodes the path must not traverse (endpoints included — forbidding an
        aggregate's own endpoint makes every path non-compliant, which is
        reported rather than silently ignored).
    forbidden_links:
        Directed links the path must not traverse.
    max_hops:
        Maximum number of links; None means unlimited.
    max_delay_s:
        Maximum one-way propagation delay in seconds; None means unlimited.
    """

    forbidden_nodes: FrozenSet[str] = frozenset()
    forbidden_links: FrozenSet[LinkId] = frozenset()
    max_hops: Optional[int] = None
    max_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_hops is not None and self.max_hops < 1:
            raise PathError(f"max_hops must be at least 1, got {self.max_hops!r}")
        if self.max_delay_s is not None and self.max_delay_s <= 0.0:
            raise PathError(f"max_delay_s must be positive, got {self.max_delay_s!r}")

    # ------------------------------------------------------------- factories

    @classmethod
    def unrestricted(cls) -> "PathPolicy":
        """A policy that allows every path (the paper's default)."""
        return cls()

    @classmethod
    def avoiding_nodes(cls, nodes: Iterable[str]) -> "PathPolicy":
        """A policy that only forbids the given nodes."""
        return cls(forbidden_nodes=frozenset(nodes))

    @classmethod
    def avoiding_links(cls, links: Iterable[LinkId]) -> "PathPolicy":
        """A policy that only forbids the given directed links."""
        return cls(forbidden_links=frozenset(links))

    # ------------------------------------------------------------ evaluation

    def violations(self, network: Network, path: Sequence[str]) -> List[str]:
        """Return a list of reasons why *path* violates this policy (empty = compliant)."""
        problems: List[str] = []
        node_hits = [node for node in path if node in self.forbidden_nodes]
        for node in node_hits:
            problems.append(f"path traverses forbidden node {node!r}")
        for link_id in zip(path, path[1:]):
            if link_id in self.forbidden_links:
                problems.append(f"path traverses forbidden link {link_id!r}")
        hops = len(path) - 1
        if self.max_hops is not None and hops > self.max_hops:
            problems.append(f"path has {hops} hops, policy allows {self.max_hops}")
        if self.max_delay_s is not None:
            delay = network.path_delay(path)
            if delay > self.max_delay_s:
                problems.append(
                    f"path delay {delay * 1e3:.1f} ms exceeds policy "
                    f"{self.max_delay_s * 1e3:.1f} ms"
                )
        return problems

    def is_compliant(self, network: Network, path: Sequence[str]) -> bool:
        """Return True when *path* satisfies every constraint."""
        return not self.violations(network, path)

    def require_compliant(self, network: Network, path: Sequence[str]) -> Path:
        """Return *path* as a tuple, raising :class:`PathError` when non-compliant."""
        problems = self.violations(network, path)
        if problems:
            raise PathError(
                f"path {tuple(path)!r} violates policy: " + "; ".join(problems)
            )
        return tuple(path)

    # ------------------------------------------------------------ composition

    def with_extra_exclusions(
        self,
        links: Iterable[LinkId] = (),
        nodes: Iterable[str] = (),
    ) -> "PathPolicy":
        """Return a policy with additional forbidden links/nodes.

        The path generator composes the aggregate's base policy with the
        congestion-driven exclusions (global / local / link-local) through
        this method.
        """
        return PathPolicy(
            forbidden_nodes=self.forbidden_nodes | frozenset(nodes),
            forbidden_links=self.forbidden_links | frozenset(links),
            max_hops=self.max_hops,
            max_delay_s=self.max_delay_s,
        )

    def exclusions(self) -> Tuple[FrozenSet[LinkId], FrozenSet[str]]:
        """Return the (links, nodes) exclusion sets to feed into Dijkstra."""
        return self.forbidden_links, self.forbidden_nodes
