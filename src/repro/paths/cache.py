"""Cross-epoch path-set caching.

The control loop (:mod:`repro.dynamics.loop`) historically rebuilt a fresh
:class:`~repro.paths.generator.PathGenerator` every time the observed
topology changed, throwing away every shortest-path query the previous
generator had answered.  On failure/repair schedules the topology oscillates
between a handful of concrete states (base network, each degraded view), so
the same Dijkstra queries are re-answered epoch after epoch — at tiered
continental scale that is millions of redundant relaxations.

:class:`PathSetCache` keys generators by a content signature of the
topology: node set, per-link endpoints/capacity/delay, and the failed
link/node sets of degraded views.  Two topologies with the same signature
route identically, so sharing one generator (and its internal query cache)
is safe; any change that can alter routing — a capacity override, a link
failure, a repair — changes the signature and misses.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional

from repro.paths.generator import PathGenerator
from repro.paths.policy import PathPolicy
from repro.topology.graph import Network

__all__ = ["PathSetCache", "topology_signature"]

#: Default number of distinct topologies a cache retains (LRU beyond that).
DEFAULT_MAX_ENTRIES = 16


def topology_signature(network: Network) -> str:
    """A content hash of everything about *network* that can affect paths.

    Covers the node set, every directed link's endpoints, capacity and
    delay (``repr`` of the floats, so any numeric change — including a
    capacity override — changes the digest), and the failed link/node sets
    of degraded views.  Degraded views keep dead links in their dense
    ``links`` table, so the failure sets must be hashed explicitly — the
    link table alone cannot distinguish a degraded view from its base.
    """
    digest = hashlib.sha256()
    for name in network.node_names:
        digest.update(b"n")
        digest.update(name.encode())
        digest.update(b"\x00")
    for link in network.links:
        digest.update(b"l")
        digest.update(
            f"{link.src}\x00{link.dst}\x00{link.capacity_bps!r}"
            f"\x00{link.delay_s!r}\x00".encode()
        )
    failed_links = getattr(network, "failed_links", frozenset())
    for src, dst in sorted(failed_links):
        digest.update(b"fl")
        digest.update(f"{src}\x00{dst}\x00".encode())
    failed_nodes = getattr(network, "failed_nodes", frozenset())
    for name in sorted(failed_nodes):
        digest.update(b"fn")
        digest.update(name.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class PathSetCache:
    """LRU cache of :class:`PathGenerator` instances keyed by topology content.

    One cache serves one path policy; the policy shapes every generated
    path, so generators must not be shared across policies.

    Parameters
    ----------
    policy:
        The path policy passed to every generator this cache builds
        (default: unrestricted).
    max_entries:
        Number of distinct topology signatures retained; least recently
        used generators are evicted beyond that.
    """

    __slots__ = ("policy", "max_entries", "hits", "misses", "_generators")

    def __init__(
        self,
        policy: Optional[PathPolicy] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries!r}")
        self.policy = policy
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._generators: "OrderedDict[str, PathGenerator]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._generators)

    def generator_for(self, network: Network) -> PathGenerator:
        """The cached generator for *network*'s topology, building on miss.

        A hit returns the previously built generator — including its warm
        internal shortest-path cache — for any network whose content
        signature matches, even a different object (e.g. the base network
        after a failure is repaired).
        """
        signature = topology_signature(network)
        generator = self._generators.get(signature)
        if generator is not None:
            self.hits += 1
            self._generators.move_to_end(signature)
            return generator
        self.misses += 1
        generator = PathGenerator(network, self.policy)
        self._generators[signature] = generator
        while len(self._generators) > self.max_entries:
            self._generators.popitem(last=False)
        return generator

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for reports and tests)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._generators)}

    def clear(self) -> None:
        """Drop every cached generator and reset the counters."""
        self._generators.clear()
        self.hits = 0
        self.misses = 0
