"""Delay-weighted shortest paths.

FUBAR's default path for every aggregate is "simply the lowest delay path"
(§2.4), and all three alternative-path queries are lowest-delay searches that
avoid a set of links.  This module implements Dijkstra's algorithm directly
on the :class:`~repro.topology.graph.Network` container with support for
excluded links and nodes, which is all the path generator needs.

The implementation is cross-checked against ``networkx.shortest_path`` in the
test suite.
"""

from __future__ import annotations

import heapq
from typing import AbstractSet, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.exceptions import NoPathError, UnknownNodeError
from repro.topology.graph import LinkId, Network, Path

#: The empty exclusion set, shared to avoid re-allocating it on every call.
NO_LINKS: FrozenSet[LinkId] = frozenset()
NO_NODES: FrozenSet[str] = frozenset()


def shortest_path(
    network: Network,
    source: str,
    destination: str,
    excluded_links: AbstractSet[LinkId] = NO_LINKS,
    excluded_nodes: AbstractSet[str] = NO_NODES,
) -> Path:
    """Return the lowest-delay path from *source* to *destination*.

    Links in *excluded_links* and nodes in *excluded_nodes* (other than the
    endpoints) are treated as absent.  Raises :class:`NoPathError` when no
    path survives the exclusions.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(destination):
        raise UnknownNodeError(destination)
    if source == destination:
        raise NoPathError(source, destination, "source equals destination")

    distances: Dict[str, float] = {source: 0.0}
    previous: Dict[str, str] = {}
    visited: set = set()
    queue: list = [(0.0, source)]

    while queue:
        distance, node = heapq.heappop(queue)
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        for link in network.out_links(node):
            neighbour = link.dst
            if neighbour in visited:
                continue
            if neighbour in excluded_nodes and neighbour != destination:
                continue
            if link.link_id in excluded_links:
                continue
            candidate = distance + link.delay_s
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                previous[neighbour] = node
                heapq.heappush(queue, (candidate, neighbour))

    if destination not in previous and destination != source:
        raise NoPathError(source, destination, "exclusions disconnect the pair")

    path = [destination]
    while path[-1] != source:
        path.append(previous[path[-1]])
    path.reverse()
    return tuple(path)


def shortest_path_or_none(
    network: Network,
    source: str,
    destination: str,
    excluded_links: AbstractSet[LinkId] = NO_LINKS,
    excluded_nodes: AbstractSet[str] = NO_NODES,
) -> Optional[Path]:
    """Like :func:`shortest_path` but returns None instead of raising."""
    try:
        return shortest_path(network, source, destination, excluded_links, excluded_nodes)
    except NoPathError:
        return None


def shortest_path_tree(network: Network, source: str) -> Dict[str, Path]:
    """Return the lowest-delay path from *source* to every reachable node.

    The result maps destination name to path; the source itself is omitted.
    Used by the shortest-path baseline, which routes every aggregate over
    this tree.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    distances: Dict[str, float] = {source: 0.0}
    previous: Dict[str, str] = {}
    visited: set = set()
    queue: list = [(0.0, source)]

    while queue:
        distance, node = heapq.heappop(queue)
        if node in visited:
            continue
        visited.add(node)
        for link in network.out_links(node):
            neighbour = link.dst
            if neighbour in visited:
                continue
            candidate = distance + link.delay_s
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                previous[neighbour] = node
                heapq.heappush(queue, (candidate, neighbour))

    paths: Dict[str, Path] = {}
    for destination in network.node_names:
        if destination == source or destination not in previous:
            continue
        path = [destination]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        paths[destination] = tuple(path)
    return paths


def all_pairs_shortest_paths(network: Network) -> Dict[Tuple[str, str], Path]:
    """Lowest-delay path for every ordered pair of distinct, connected nodes."""
    result: Dict[Tuple[str, str], Path] = {}
    for source in network.node_names:
        for destination, path in shortest_path_tree(network, source).items():
            result[(source, destination)] = path
    return result


def path_exists(
    network: Network,
    source: str,
    destination: str,
    excluded_links: AbstractSet[LinkId] = NO_LINKS,
) -> bool:
    """Return True when *destination* is reachable from *source* under the exclusions."""
    return (
        shortest_path_or_none(network, source, destination, excluded_links) is not None
    )
