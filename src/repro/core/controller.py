"""The FUBAR offline controller facade.

The paper positions FUBAR as "an offline controller in SDN or MPLS networks,
in conjunction with an online controller to actually admit flows to the
paths that have been computed" (§5).  :class:`Fubar` is that offline
controller: it takes a topology and a (possibly measured) traffic matrix,
runs the optimizer, and hands back both the optimization result and a
deployable :class:`~repro.core.routing.RoutingTable`.

This is the top of the public API and what the quickstart example uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import FubarConfig
from repro.core.optimizer import FubarOptimizer, FubarResult
from repro.core.routing import RoutingTable
from repro.paths.generator import PathGenerator
from repro.paths.policy import PathPolicy
from repro.topology.graph import Network
from repro.topology.validation import require_routable
from repro.traffic.matrix import TrafficMatrix
from repro.trafficmodel.waterfill import TrafficModelConfig
from repro.utility.aggregation import PriorityWeights


@dataclass
class FubarPlan:
    """The deployable output of one controller cycle."""

    result: FubarResult
    routing: RoutingTable

    @property
    def network_utility(self) -> float:
        """Final network utility of the computed plan."""
        return self.result.network_utility

    @property
    def improvement_over_shortest_path(self) -> float:
        """Utility gained relative to the shortest-path starting point."""
        initial = self.result.initial_point
        if initial is None:
            return 0.0
        return self.result.network_utility - initial.network_utility

    def summary(self) -> dict:
        """Merge the optimizer summary with routing statistics."""
        summary = self.result.summary()
        summary.update(
            {
                "aggregates_split": len(self.routing.multipath_aggregates()),
                "max_paths_per_aggregate": self.routing.max_paths_per_aggregate(),
            }
        )
        return summary


class Fubar:
    """The offline FUBAR controller.

    Parameters
    ----------
    network:
        The topology to optimize (validated to be routable on construction).
    config:
        Optimizer configuration; defaults to the paper's settings.
    policy:
        Path policy applied to every generated path.
    model_config:
        Traffic-model configuration (RTT floor, RTT fairness on/off).
    """

    def __init__(
        self,
        network: Network,
        config: Optional[FubarConfig] = None,
        policy: Optional[PathPolicy] = None,
        model_config: Optional[TrafficModelConfig] = None,
    ) -> None:
        require_routable(network)
        self.network = network
        self.config = config or FubarConfig()
        self.policy = policy or PathPolicy.unrestricted()
        self.model_config = model_config

    def optimize(self, traffic_matrix: TrafficMatrix) -> FubarPlan:
        """Run one offline optimization cycle on *traffic_matrix*."""
        generator = PathGenerator(self.network, self.policy)
        optimizer = FubarOptimizer(
            self.network,
            traffic_matrix,
            config=self.config,
            path_generator=generator,
            model_config=self.model_config,
        )
        result = optimizer.run()
        routing = RoutingTable.from_state(result.state)
        return FubarPlan(result=result, routing=routing)

    def optimize_with_priority(
        self, traffic_matrix: TrafficMatrix, weights: PriorityWeights
    ) -> FubarPlan:
        """Run a cycle with non-default priority weights (the Figure 5 scenario)."""
        controller = Fubar(
            self.network,
            config=self.config.with_priority(weights),
            policy=self.policy,
            model_config=self.model_config,
        )
        return controller.optimize(traffic_matrix)
