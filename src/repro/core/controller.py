"""The FUBAR offline controller facade.

The paper positions FUBAR as "an offline controller in SDN or MPLS networks,
in conjunction with an online controller to actually admit flows to the
paths that have been computed" (§5).  :class:`Fubar` is that offline
controller: it takes a topology and a (possibly measured) traffic matrix,
runs the optimizer, and hands back both the optimization result and a
deployable :class:`~repro.core.routing.RoutingTable`.

This is the top of the public API and what the quickstart example uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.paths.cache import PathSetCache
    from repro.trafficmodel.compiled import CompiledModelCache

from repro.core.config import FubarConfig
from repro.core.optimizer import FubarOptimizer, FubarResult
from repro.core.routing import RoutingTable
from repro.core.state import AllocationState
from repro.paths.generator import PathGenerator
from repro.paths.policy import PathPolicy
from repro.topology.graph import Network
from repro.topology.validation import require_routable
from repro.traffic.matrix import TrafficMatrix
from repro.trafficmodel.waterfill import TrafficModelConfig
from repro.utility.aggregation import PriorityWeights


@dataclass
class FubarPlan:
    """The deployable output of one controller cycle."""

    result: FubarResult
    routing: RoutingTable

    @property
    def network_utility(self) -> float:
        """Final network utility of the computed plan."""
        return self.result.network_utility

    @property
    def improvement_over_shortest_path(self) -> Optional[float]:
        """Utility gained relative to the shortest-path starting point.

        ``None`` when no initial trace point was recorded (e.g. a warm-started
        cycle, which never evaluates the shortest-path solution): reporting
        ``0.0`` there would misrepresent an unknown baseline as "no gain".
        Reports render ``None`` as "n/a", mirroring
        :func:`repro.metrics.reporting.relative_improvement`.
        """
        initial = self.result.initial_point
        if initial is None:
            return None
        return self.result.network_utility - initial.network_utility

    def summary(self) -> dict:
        """Merge the optimizer summary with routing statistics."""
        summary = self.result.summary()
        summary.update(
            {
                "improvement_over_shortest_path": self.improvement_over_shortest_path,
                "aggregates_split": len(self.routing.multipath_aggregates()),
                "max_paths_per_aggregate": self.routing.max_paths_per_aggregate(),
            }
        )
        return summary


class Fubar:
    """The offline FUBAR controller.

    Parameters
    ----------
    network:
        The topology to optimize (validated to be routable on construction).
    config:
        Optimizer configuration; defaults to the paper's settings.
    policy:
        Path policy applied to every generated path.
    model_config:
        Traffic-model configuration (RTT floor, RTT fairness on/off).
    path_cache:
        Optional warm :class:`~repro.paths.cache.PathSetCache`; used only
        under the unrestricted default policy (the cache serves one policy).
    model_cache:
        Optional warm
        :class:`~repro.trafficmodel.compiled.CompiledModelCache` supplying
        the optimizer's traffic-model engine.
    """

    def __init__(
        self,
        network: Network,
        config: Optional[FubarConfig] = None,
        policy: Optional[PathPolicy] = None,
        model_config: Optional[TrafficModelConfig] = None,
        path_cache: Optional["PathSetCache"] = None,
        model_cache: Optional["CompiledModelCache"] = None,
    ) -> None:
        require_routable(network)
        self.network = network
        self.config = config or FubarConfig()
        self.policy = policy or PathPolicy.unrestricted()
        self.model_config = model_config
        self._path_cache = path_cache
        self._model_cache = model_cache

    def optimize(
        self,
        traffic_matrix: TrafficMatrix,
        warm_start: Optional[FubarPlan] = None,
        config: Optional[FubarConfig] = None,
    ) -> FubarPlan:
        """Run one offline optimization cycle on *traffic_matrix*.

        Parameters
        ----------
        warm_start:
            A previous cycle's plan.  The new cycle starts from that plan's
            allocation (rescaled to the new flow counts) and inherits its
            per-aggregate path sets, instead of restarting from shortest
            paths — the re-optimization mode of the control loop
            (:mod:`repro.dynamics`).
        config:
            Per-cycle configuration override; defaults to the controller's.
        """
        if self._path_cache is not None and self.policy == PathPolicy.unrestricted():
            generator = self._path_cache.generator_for(self.network)
        else:
            generator = PathGenerator(self.network, self.policy)
        traffic_model = None
        if self._model_cache is not None:
            from repro.trafficmodel.waterfill import TrafficModel

            traffic_model = TrafficModel.from_engine(
                self._model_cache.engine_for(self.network, self.model_config)
            )
        optimizer = FubarOptimizer(
            self.network,
            traffic_matrix,
            config=config or self.config,
            path_generator=generator,
            traffic_model=traffic_model,
            model_config=None if traffic_model is not None else self.model_config,
        )
        initial_state = None
        initial_path_sets = None
        if warm_start is not None:
            initial_state = AllocationState.warm_start(
                warm_start.result.state, traffic_matrix, generator
            )
            initial_path_sets = warm_start.result.path_sets
        result = optimizer.run(
            initial_state=initial_state, initial_path_sets=initial_path_sets
        )
        routing = RoutingTable.from_state(result.state)
        return FubarPlan(result=result, routing=routing)

    def optimize_with_priority(
        self, traffic_matrix: TrafficMatrix, weights: PriorityWeights
    ) -> FubarPlan:
        """Run a cycle with non-default priority weights (the Figure 5 scenario).

        A ``dataclasses.replace``-style config swap on this instance: the
        already-validated topology is reused instead of constructing a whole
        new controller (which would re-run ``require_routable``).
        """
        return self.optimize(traffic_matrix, config=self.config.with_priority(weights))
