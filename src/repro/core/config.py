"""Configuration of the FUBAR optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import OptimizationError
from repro.utility.aggregation import PriorityWeights


@dataclass(frozen=True)
class FubarConfig:
    """Tuning knobs of the flow-allocation algorithm (paper §2.5).

    Parameters
    ----------
    move_fraction:
        The fraction N of an aggregate's flows moved in one step (Listing 2,
        line 3).  The paper describes a speed/quality trade-off: larger
        fractions converge faster but give lower final utility.
    small_aggregate_flows:
        Aggregates with at most this many flows are moved in their entirety
        ("Small aggregates are moved in their entirety because they are
        unlikely to have a big impact on the final solution").
    escalation_multipliers:
        Successive multipliers applied to ``move_fraction`` while the
        algorithm is stuck in a local optimum ("we can try to move larger and
        larger numbers of flows").  The last multiplier should push the
        effective fraction to 1.0 so that, as the paper requires, the
        algorithm only gives up "after having tried to move even large
        aggregates in their entirety".
    min_utility_improvement:
        A candidate move must improve the weighted network utility by at
        least this much to count as progress; guards against floating-point
        churn.
    consider_existing_paths:
        When True (default) a step also tests moving flows onto paths already
        in the aggregate's path set that avoid the congested link, in
        addition to the three freshly generated alternatives.  Turning this
        off reproduces the narrowest reading of Listing 2 and is compared in
        the ablation benchmarks.
    max_steps:
        Hard cap on committed optimization steps (safety bound; None means
        unlimited).
    max_wall_clock_s:
        Hard cap on optimizer wall-clock time in seconds (None = unlimited).
        The paper positions FUBAR as an offline system with a five-minute
        budget; this knob is how an operator would enforce that.
    priority_weights:
        Per-class weights used in the optimization objective (Figure 5
        prioritizes large flows by increasing their weight).
    record_every_step:
        When True the recorder captures a trace point after every committed
        move (needed to redraw Figures 3–5); when False only at the start and
        end, which is slightly faster for large runs.
    use_incremental_model:
        When True (default) candidate moves are scored through the compiled
        traffic-model engine's delta-evaluation path
        (:meth:`~repro.trafficmodel.compiled.CompiledTrafficModel.evaluate_patched`),
        which patches only the bundles a move changes.  When False each
        candidate rebuilds and evaluates the full bundle list — the
        pre-compiled-engine behaviour, kept for the running-time benchmarks
        and equivalence checks.
    use_batched_scorer:
        When True (default) the incremental path scores all candidate moves
        of a step through stacked block-diagonal solves
        (:class:`~repro.trafficmodel.compiled.BatchedCandidateScorer`)
        instead of one solve per candidate, amortizing the per-solve setup
        costs — the difference is what keeps steps tractable on 1000-node
        tiered topologies.  Scores are bitwise equal either way, so the
        selected moves are identical; the flag exists for benchmarks and
        equivalence tests.  Only takes effect when ``use_incremental_model``
        is on.
    """

    move_fraction: float = 0.25
    small_aggregate_flows: int = 5
    escalation_multipliers: Tuple[float, ...] = (1.0, 2.0, 4.0)
    min_utility_improvement: float = 1e-9
    consider_existing_paths: bool = True
    max_steps: Optional[int] = None
    max_wall_clock_s: Optional[float] = None
    priority_weights: PriorityWeights = field(default_factory=PriorityWeights.uniform)
    record_every_step: bool = True
    use_incremental_model: bool = True
    use_batched_scorer: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.move_fraction <= 1.0:
            raise OptimizationError(
                f"move_fraction must be in (0, 1], got {self.move_fraction!r}"
            )
        if self.small_aggregate_flows < 0:
            raise OptimizationError(
                f"small_aggregate_flows must be non-negative, got {self.small_aggregate_flows!r}"
            )
        if not self.escalation_multipliers:
            raise OptimizationError("escalation_multipliers must not be empty")
        if any(m <= 0.0 for m in self.escalation_multipliers):
            raise OptimizationError(
                f"escalation multipliers must be positive, got {self.escalation_multipliers!r}"
            )
        if list(self.escalation_multipliers) != sorted(self.escalation_multipliers):
            raise OptimizationError(
                f"escalation multipliers must be non-decreasing, got {self.escalation_multipliers!r}"
            )
        if self.min_utility_improvement < 0.0:
            raise OptimizationError(
                f"min_utility_improvement must be non-negative, "
                f"got {self.min_utility_improvement!r}"
            )
        if self.max_steps is not None and self.max_steps < 1:
            raise OptimizationError(f"max_steps must be positive, got {self.max_steps!r}")
        if self.max_wall_clock_s is not None and self.max_wall_clock_s <= 0.0:
            raise OptimizationError(
                f"max_wall_clock_s must be positive, got {self.max_wall_clock_s!r}"
            )

    def effective_fraction(self, escalation_level: int) -> float:
        """The move fraction used at a given escalation level, clamped to 1.0."""
        level = min(max(escalation_level, 0), len(self.escalation_multipliers) - 1)
        return min(self.move_fraction * self.escalation_multipliers[level], 1.0)

    @property
    def max_escalation_level(self) -> int:
        """The last escalation level before the optimizer gives up."""
        return len(self.escalation_multipliers) - 1

    def with_priority(self, weights: PriorityWeights) -> "FubarConfig":
        """Return a copy with different priority weights (used by Figure 5)."""
        return replace(self, priority_weights=weights)
