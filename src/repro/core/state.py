"""Allocation state: which flows of which aggregate travel over which path.

The optimizer's unit of work is a move — take N flows of one aggregate off
one path and put them on another — and :class:`AllocationState` is the
immutable-ish record those moves are applied to.  A state knows how to turn
itself into the bundle list the traffic model consumes.

States are cheap to fork (:meth:`AllocationState.with_move` copies only the
allocation of the affected aggregate), because the optimizer forks one for
every candidate move it evaluates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import AllocationError, NoPathError
from repro.paths.generator import PathGenerator
from repro.paths.pathset import PathSet
from repro.topology.graph import Network, Path
from repro.traffic.aggregate import Aggregate, AggregateKey
from repro.traffic.matrix import TrafficMatrix
from repro.trafficmodel.bundle import Bundle

#: One aggregate's allocation: path -> number of flows on that path.
AggregateAllocation = Dict[Path, int]


class AllocationState:
    """Maps every aggregate to a distribution of its flows over paths."""

    def __init__(
        self,
        network: Network,
        traffic_matrix: TrafficMatrix,
        allocations: Mapping[AggregateKey, AggregateAllocation],
    ) -> None:
        self.network = network
        self.traffic_matrix = traffic_matrix
        self._allocations: Dict[AggregateKey, AggregateAllocation] = {
            key: dict(paths) for key, paths in allocations.items()
        }
        self._validate()

    # ------------------------------------------------------------ validation

    def _validate(self) -> None:
        for key, allocation in self._allocations.items():
            aggregate = self.traffic_matrix.get(key)
            if not allocation:
                raise AllocationError(f"aggregate {key!r} has no paths allocated")
            total = 0
            for path, flows in allocation.items():
                if flows <= 0:
                    raise AllocationError(
                        f"aggregate {key!r} has a non-positive flow count "
                        f"({flows}) on path {path!r}"
                    )
                if path[0] != aggregate.source or path[-1] != aggregate.destination:
                    raise AllocationError(
                        f"path {path!r} does not connect the endpoints of {key!r}"
                    )
                total += flows
            if total != aggregate.num_flows:
                raise AllocationError(
                    f"aggregate {key!r} allocates {total} flows but has "
                    f"{aggregate.num_flows}"
                )

    # ------------------------------------------------------------- factories

    @classmethod
    def initial(
        cls,
        network: Network,
        traffic_matrix: TrafficMatrix,
        path_generator: Optional[PathGenerator] = None,
    ) -> "AllocationState":
        """All flows of every aggregate on its lowest-delay path (Listing 1, line 1)."""
        generator = path_generator or PathGenerator(network)
        allocations: Dict[AggregateKey, AggregateAllocation] = {}
        for aggregate in traffic_matrix:
            path = generator.lowest_delay_path(aggregate.source, aggregate.destination)
            if path is None:
                raise NoPathError(
                    aggregate.source,
                    aggregate.destination,
                    "aggregate cannot be routed at all",
                )
            allocations[aggregate.key] = {path: aggregate.num_flows}
        return cls(network, traffic_matrix, allocations)

    @classmethod
    def warm_start(
        cls,
        previous: "AllocationState",
        traffic_matrix: TrafficMatrix,
        path_generator: Optional[PathGenerator] = None,
    ) -> "AllocationState":
        """Seed a state for *traffic_matrix* from a previous cycle's allocation.

        Aggregates present in *previous* keep their path split: the new flow
        count is apportioned over the same paths proportionally to the old
        distribution (largest-remainder rounding, so the counts stay exact
        integers).  Aggregates new to the matrix start on their lowest-delay
        path; aggregates that disappeared are dropped.  This is the
        re-optimization entry point of the control loop — each cycle starts
        from the deployed solution instead of from shortest paths.
        """
        generator = path_generator or PathGenerator(previous.network)
        allocations: Dict[AggregateKey, AggregateAllocation] = {}
        for aggregate in traffic_matrix:
            key = aggregate.key
            old = previous._allocations.get(key)
            if old:
                allocations[key] = apportion_flows(old, aggregate.num_flows)
                continue
            path = generator.lowest_delay_path(aggregate.source, aggregate.destination)
            if path is None:
                raise NoPathError(
                    aggregate.source,
                    aggregate.destination,
                    "aggregate cannot be routed at all",
                )
            allocations[key] = {path: aggregate.num_flows}
        return cls(previous.network, traffic_matrix, allocations)

    # ----------------------------------------------------------------- reads

    @property
    def aggregate_keys(self) -> Tuple[AggregateKey, ...]:
        """Keys of every allocated aggregate."""
        return tuple(self._allocations.keys())

    def allocation_of(self, key: AggregateKey) -> AggregateAllocation:
        """A copy of one aggregate's path -> flows mapping."""
        if key not in self._allocations:
            raise AllocationError(f"no allocation for aggregate {key!r}")
        return dict(self._allocations[key])

    def paths_of(self, key: AggregateKey) -> Tuple[Path, ...]:
        """The paths currently carrying flows of one aggregate."""
        return tuple(self.allocation_of(key).keys())

    def flows_on(self, key: AggregateKey, path: Path) -> int:
        """Number of flows of *key* currently on *path* (0 when none)."""
        if key not in self._allocations:
            raise AllocationError(f"no allocation for aggregate {key!r}")
        return self._allocations[key].get(tuple(path), 0)

    def num_paths(self, key: AggregateKey) -> int:
        """Number of distinct paths carrying flows of one aggregate."""
        return len(self.allocation_of(key))

    def bundles(self) -> List[Bundle]:
        """The bundle list the traffic model consumes (one bundle per used path)."""
        bundles: List[Bundle] = []
        for key, allocation in self._allocations.items():
            aggregate = self.traffic_matrix.get(key)
            for path, flows in allocation.items():
                bundles.append(Bundle(aggregate=aggregate, path=path, num_flows=flows))
        return bundles

    def bundles_of(self, key: AggregateKey) -> List[Bundle]:
        """The bundles of a single aggregate."""
        aggregate = self.traffic_matrix.get(key)
        return [
            Bundle(aggregate=aggregate, path=path, num_flows=flows)
            for path, flows in self.allocation_of(key).items()
        ]

    def total_flows(self) -> int:
        """Total flows across all aggregates (invariant: equals the traffic matrix)."""
        return sum(
            flows
            for allocation in self._allocations.values()
            for flows in allocation.values()
        )

    def split_summary(self) -> Dict[AggregateKey, int]:
        """Number of paths used per aggregate (handy for reports and tests)."""
        return {key: len(allocation) for key, allocation in self._allocations.items()}

    # ----------------------------------------------------------------- moves

    def _check_move(
        self,
        key: AggregateKey,
        from_path: Path,
        to_path: Path,
        num_flows: int,
    ) -> Tuple[Path, Path, int, Aggregate]:
        """Validate a move; returns the normalized paths, the current flow
        count on ``from_path`` and the aggregate."""
        if num_flows <= 0:
            raise AllocationError(f"must move a positive number of flows, got {num_flows}")
        from_path = tuple(from_path)
        to_path = tuple(to_path)
        if from_path == to_path:
            raise AllocationError("cannot move flows onto the path they are already on")
        current = self.flows_on(key, from_path)
        if current < num_flows:
            raise AllocationError(
                f"aggregate {key!r} only has {current} flows on {from_path!r}, "
                f"cannot move {num_flows}"
            )
        aggregate = self.traffic_matrix.get(key)
        if to_path[0] != aggregate.source or to_path[-1] != aggregate.destination:
            raise AllocationError(
                f"target path {to_path!r} does not connect the endpoints of {key!r}"
            )
        return from_path, to_path, current, aggregate

    def move_delta(
        self,
        key: AggregateKey,
        from_path: Path,
        to_path: Path,
        num_flows: int,
    ) -> Dict[Tuple[AggregateKey, Path], Optional[Bundle]]:
        """The bundle patch a move induces, for the compiled traffic model.

        Returns the two changed rows in the shape
        :meth:`repro.trafficmodel.compiled.CompiledTrafficModel.evaluate_patched`
        consumes: the shrunk (or removed, when every flow leaves) from-path
        bundle and the grown (or brand-new) to-path bundle.  The state itself
        is not modified; commit the winning move with :meth:`with_move`.
        """
        from_path, to_path, current, aggregate = self._check_move(
            key, from_path, to_path, num_flows
        )
        delta: Dict[Tuple[AggregateKey, Path], Optional[Bundle]] = {}
        if current == num_flows:
            delta[(key, from_path)] = None
        else:
            delta[(key, from_path)] = Bundle(
                aggregate=aggregate, path=from_path, num_flows=current - num_flows
            )
        existing = self._allocations[key].get(to_path, 0)
        delta[(key, to_path)] = Bundle(
            aggregate=aggregate, path=to_path, num_flows=existing + num_flows
        )
        return delta

    def with_move(
        self,
        key: AggregateKey,
        from_path: Path,
        to_path: Path,
        num_flows: int,
    ) -> "AllocationState":
        """Return a new state with *num_flows* of *key* moved between two paths.

        Moving every flow off ``from_path`` removes that path from the
        aggregate's allocation.  The source path must currently carry at
        least *num_flows*; the destination path may be new.
        """
        from_path, to_path, current, _ = self._check_move(
            key, from_path, to_path, num_flows
        )
        new_allocation = dict(self._allocations[key])
        if current == num_flows:
            del new_allocation[from_path]
        else:
            new_allocation[from_path] = current - num_flows
        new_allocation[to_path] = new_allocation.get(to_path, 0) + num_flows

        allocations = dict(self._allocations)
        allocations[key] = new_allocation
        clone = AllocationState.__new__(AllocationState)
        clone.network = self.network
        clone.traffic_matrix = self.traffic_matrix
        clone._allocations = allocations
        return clone

    # --------------------------------------------------------------- dunders

    def __len__(self) -> int:
        return len(self._allocations)

    def __repr__(self) -> str:
        num_bundles = sum(len(a) for a in self._allocations.values())
        return (
            f"AllocationState(aggregates={len(self._allocations)}, bundles={num_bundles})"
        )


def apportion_flows(allocation: AggregateAllocation, total: int) -> AggregateAllocation:
    """Distribute *total* flows over the paths of *allocation* proportionally.

    Largest-remainder rounding keeps the result an exact integer partition of
    *total*; paths whose share rounds to zero are dropped.  *allocation* must
    be non-empty and *total* positive (AllocationState validates both).
    """
    old_total = sum(allocation.values())
    quotas = {path: flows * total / old_total for path, flows in allocation.items()}
    apportioned = {path: int(quota) for path, quota in quotas.items()}
    leftover = total - sum(apportioned.values())
    # Stable sort: ties in the fractional part keep the allocation's order.
    by_remainder = sorted(
        quotas, key=lambda path: quotas[path] - apportioned[path], reverse=True
    )
    for path in by_remainder[:leftover]:
        apportioned[path] += 1
    return {path: flows for path, flows in apportioned.items() if flows > 0}


def build_path_sets(
    network: Network,
    state: AllocationState,
    previous: Optional[Mapping[AggregateKey, PathSet]] = None,
) -> Dict[AggregateKey, PathSet]:
    """Create one :class:`PathSet` per aggregate seeded with its allocated paths.

    When *previous* path sets are given (warm start), each aggregate's set
    additionally inherits the alternatives discovered in earlier cycles, so
    re-optimization does not have to regenerate them.  The inherited sets are
    copied, never mutated.
    """
    path_sets: Dict[AggregateKey, PathSet] = {}
    for key in state.aggregate_keys:
        path_set = PathSet(network, state.paths_of(key))
        if previous and key in previous:
            path_set.add_many(previous[key].paths)
        path_sets[key] = path_set
    return path_sets
