"""FUBAR's primary contribution: the flow-allocation optimizer and controller."""

from repro.core.config import FubarConfig
from repro.core.controller import Fubar, FubarPlan
from repro.core.optimizer import (
    FubarOptimizer,
    FubarResult,
    TERMINATED_LOCAL_OPTIMUM,
    TERMINATED_NO_CONGESTION,
    TERMINATED_STEP_LIMIT,
    TERMINATED_TIME_LIMIT,
    optimize,
)
from repro.core.recorder import OptimizationRecorder, TracePoint
from repro.core.routing import AggregateRoute, PathSplit, RoutingTable
from repro.core.state import AllocationState, build_path_sets
from repro.core.step import StepResult, candidate_paths_for_bundle, flows_to_move, perform_step

__all__ = [
    "AggregateRoute",
    "AllocationState",
    "Fubar",
    "FubarConfig",
    "FubarOptimizer",
    "FubarPlan",
    "FubarResult",
    "OptimizationRecorder",
    "PathSplit",
    "RoutingTable",
    "StepResult",
    "TERMINATED_LOCAL_OPTIMUM",
    "TERMINATED_NO_CONGESTION",
    "TERMINATED_STEP_LIMIT",
    "TERMINATED_TIME_LIMIT",
    "TracePoint",
    "build_path_sets",
    "candidate_paths_for_bundle",
    "flows_to_move",
    "optimize",
    "perform_step",
]
