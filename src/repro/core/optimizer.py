"""The FUBAR flow-allocation optimizer (paper Listing 1, §2.5).

The main loop mirrors Listing 1:

1. put every aggregate's flows on its lowest-delay path;
2. while there are congested links, visit them from most to least
   oversubscribed and run a :func:`~repro.core.step.perform_step` on each
   until one of them yields an improving move;
3. when no link yields an improving move, escalate the move fraction (the
   simulated-annealing-inspired escape from §2.5) and try again;
4. terminate when there is no congestion left, when even whole-aggregate
   moves cannot improve utility, or when a configured step/time budget runs
   out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import FubarConfig
from repro.core.recorder import OptimizationRecorder, TracePoint
from repro.core.state import AllocationState, build_path_sets
from repro.core.step import perform_step
from repro.exceptions import OptimizationError
from repro.paths.generator import PathGenerator
from repro.paths.pathset import PathSet
from repro.topology.graph import Network
from repro.traffic.aggregate import AggregateKey
from repro.traffic.matrix import TrafficMatrix
from repro.trafficmodel.result import TrafficModelResult
from repro.trafficmodel.waterfill import TrafficModel, TrafficModelConfig

#: Termination reasons reported in :class:`FubarResult`.
TERMINATED_NO_CONGESTION = "no congestion remains"
TERMINATED_LOCAL_OPTIMUM = "no improving move at maximum escalation"
TERMINATED_STEP_LIMIT = "step limit reached"
TERMINATED_TIME_LIMIT = "wall-clock limit reached"


@dataclass
class FubarResult:
    """Everything produced by one optimizer run."""

    network: Network
    traffic_matrix: TrafficMatrix
    config: FubarConfig
    state: AllocationState
    model_result: TrafficModelResult
    recorder: OptimizationRecorder
    path_sets: Dict[AggregateKey, PathSet]
    num_steps: int
    termination_reason: str
    wall_clock_s: float
    model_evaluations: int
    warm_started: bool = False

    @property
    def network_utility(self) -> float:
        """Final unweighted network utility (the paper's "total average")."""
        return self.model_result.network_utility()

    @property
    def weighted_utility(self) -> float:
        """Final network utility under the configured priority weights."""
        return self.model_result.network_utility(self.config.priority_weights)

    @property
    def has_congestion(self) -> bool:
        """True when congested links remain in the final solution."""
        return self.model_result.has_congestion

    @property
    def trace(self) -> tuple:
        """The recorded trace points (used to redraw Figures 3–5)."""
        return self.recorder.points

    @property
    def initial_point(self) -> Optional[TracePoint]:
        """The trace point of the shortest-path starting solution.

        ``None`` for warm-started runs: their first trace point is the
        inherited allocation, not the shortest-path solution, so there is no
        shortest-path reference to compare against.
        """
        if self.warm_started:
            return None
        return self.recorder.initial

    def summary(self) -> dict:
        """A compact dictionary summary for reports and EXPERIMENTS.md."""
        initial = self.recorder.initial
        return {
            "network": self.network.name,
            "aggregates": self.traffic_matrix.num_aggregates,
            "steps": self.num_steps,
            "model_evaluations": self.model_evaluations,
            "wall_clock_s": self.wall_clock_s,
            "termination": self.termination_reason,
            "initial_utility": initial.network_utility if initial else None,
            "final_utility": self.network_utility,
            "final_utilization": self.model_result.total_utilization(),
            "final_demanded_utilization": self.model_result.demanded_utilization(),
            "congested_links_remaining": len(self.model_result.congested_links),
        }


class FubarOptimizer:
    """Runs the FUBAR flow-allocation algorithm on one network + traffic matrix."""

    def __init__(
        self,
        network: Network,
        traffic_matrix: TrafficMatrix,
        config: Optional[FubarConfig] = None,
        path_generator: Optional[PathGenerator] = None,
        traffic_model: Optional[TrafficModel] = None,
        model_config: Optional[TrafficModelConfig] = None,
    ) -> None:
        traffic_matrix.require_routable_on(network)
        self.network = network
        self.traffic_matrix = traffic_matrix
        self.config = config or FubarConfig()
        self.path_generator = path_generator or PathGenerator(network)
        if traffic_model is not None and model_config is not None:
            raise OptimizationError(
                "pass either traffic_model or model_config, not both"
            )
        self.model = traffic_model or TrafficModel(network, model_config)

    # ------------------------------------------------------------------- run

    def run(
        self,
        initial_state: Optional[AllocationState] = None,
        initial_path_sets: Optional[Dict[AggregateKey, PathSet]] = None,
    ) -> FubarResult:
        """Execute Listing 1 and return the final :class:`FubarResult`.

        ``initial_state`` seeds the starting allocation (warm start); the
        default is the lowest-delay allocation of Listing 1, line 1.
        ``initial_path_sets`` additionally seeds each aggregate's path set
        with alternatives discovered in earlier cycles (the sets are copied,
        the caller's objects are never mutated).
        """
        config = self.config
        recorder = OptimizationRecorder(config.priority_weights)
        recorder.start()

        # Snapshot the (possibly injected/reused) model's cumulative counter
        # so the reported count is per-run, not per-model-lifetime.
        evaluations_at_start = self.model.evaluations

        state = initial_state or AllocationState.initial(
            self.network, self.traffic_matrix, self.path_generator
        )
        path_sets = build_path_sets(self.network, state, previous=initial_path_sets)
        result = self.model.evaluate(state.bundles())
        recorder.record(
            0,
            result,
            "initial warm-start allocation"
            if initial_state is not None
            else "initial lowest-delay allocation",
        )

        step_count = 0
        escalation_level = 0
        termination = TERMINATED_NO_CONGESTION

        while True:
            if not result.has_congestion:
                termination = TERMINATED_NO_CONGESTION
                break
            if config.max_steps is not None and step_count >= config.max_steps:
                termination = TERMINATED_STEP_LIMIT
                break
            if (
                config.max_wall_clock_s is not None
                and recorder.elapsed_s() >= config.max_wall_clock_s
            ):
                termination = TERMINATED_TIME_LIMIT
                break

            progress = False
            # Compile the current allocation once and share it across every
            # congested link this iteration visits; candidate moves patch it.
            compiled_base = (
                self.model.engine.compile(state.bundles())
                if config.use_incremental_model
                else None
            )
            for link_id in result.congested_links_by_oversubscription():
                step_result = perform_step(
                    link_id,
                    state,
                    path_sets,
                    self.model,
                    self.path_generator,
                    config,
                    result,
                    escalation_level,
                    compiled_base=compiled_base,
                )
                if step_result.progress:
                    state = step_result.state
                    result = step_result.result
                    step_count += 1
                    progress = True
                    if config.record_every_step:
                        recorder.record(step_count, result, step_result.describe())
                    break

            if progress:
                escalation_level = 0
                continue
            if escalation_level >= config.max_escalation_level:
                termination = TERMINATED_LOCAL_OPTIMUM
                break
            escalation_level += 1

        recorder.record(step_count, result, f"terminated: {termination}")
        return FubarResult(
            network=self.network,
            traffic_matrix=self.traffic_matrix,
            config=config,
            state=state,
            model_result=result,
            recorder=recorder,
            path_sets=path_sets,
            num_steps=step_count,
            termination_reason=termination,
            wall_clock_s=recorder.elapsed_s(),
            model_evaluations=self.model.evaluations - evaluations_at_start,
            warm_started=initial_state is not None,
        )


def optimize(
    network: Network,
    traffic_matrix: TrafficMatrix,
    config: Optional[FubarConfig] = None,
) -> FubarResult:
    """One-shot convenience wrapper: build an optimizer and run it."""
    return FubarOptimizer(network, traffic_matrix, config).run()
