"""Optimization trace recording.

Figures 3–5 of the paper are time series: network utility, large-flow
utility and link utilization plotted against the optimizer's wall-clock
progress.  The :class:`OptimizationRecorder` captures exactly those series —
one :class:`TracePoint` per committed move — so the benchmark harness can
regenerate the figures from any run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.traffic.classes import LARGE_TRANSFER
from repro.trafficmodel.result import TrafficModelResult
from repro.utility.aggregation import PriorityWeights


@dataclass(frozen=True)
class TracePoint:
    """One sample of the optimizer's progress."""

    wall_clock_s: float
    step: int
    network_utility: float
    weighted_utility: float
    class_utilities: Dict[str, float]
    total_utilization: float
    demanded_utilization: float
    num_congested_links: int
    event: str

    @property
    def large_flow_utility(self) -> Optional[float]:
        """Utility of the large-transfer class, when present (Figures 3–5, middle)."""
        return self.class_utilities.get(LARGE_TRANSFER)

    def as_dict(self) -> dict:
        return {
            "wall_clock_s": self.wall_clock_s,
            "step": self.step,
            "network_utility": self.network_utility,
            "weighted_utility": self.weighted_utility,
            "class_utilities": dict(self.class_utilities),
            "total_utilization": self.total_utilization,
            "demanded_utilization": self.demanded_utilization,
            "num_congested_links": self.num_congested_links,
            "event": self.event,
        }


class OptimizationRecorder:
    """Captures the optimizer's progress as a series of :class:`TracePoint`."""

    def __init__(self, weights: Optional[PriorityWeights] = None) -> None:
        self.weights = weights or PriorityWeights.uniform()
        self._points: List[TracePoint] = []
        self._start: Optional[float] = None

    # ----------------------------------------------------------------- write

    def start(self) -> None:
        """Mark the beginning of the run (wall-clock zero)."""
        self._start = time.perf_counter()  # repro: allow[PURE101] — trace timestamps are telemetry; result equality compares utilities and allocations, never wall-clock fields

    def elapsed_s(self) -> float:
        """Seconds since :meth:`start` (0 when not started)."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start  # repro: allow[PURE101] — trace timestamps are telemetry; result equality compares utilities and allocations, never wall-clock fields

    def record(self, step: int, result: TrafficModelResult, event: str) -> TracePoint:
        """Capture one trace point from a traffic-model result."""
        point = TracePoint(
            wall_clock_s=self.elapsed_s(),
            step=step,
            network_utility=result.network_utility(),
            weighted_utility=result.network_utility(self.weights),
            class_utilities=result.per_class_utilities(),
            total_utilization=result.total_utilization(),
            demanded_utilization=result.demanded_utilization(),
            num_congested_links=len(result.congested_links),
            event=event,
        )
        self._points.append(point)
        return point

    # ------------------------------------------------------------------ read

    @property
    def points(self) -> Tuple[TracePoint, ...]:
        """All recorded trace points, oldest first."""
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def final(self) -> Optional[TracePoint]:
        """The last trace point, or None when nothing was recorded."""
        return self._points[-1] if self._points else None

    @property
    def initial(self) -> Optional[TracePoint]:
        """The first trace point, or None when nothing was recorded."""
        return self._points[0] if self._points else None

    def utility_series(self) -> Tuple[List[float], List[float]]:
        """(wall-clock seconds, network utility) series — Figures 3–5, left panel."""
        return (
            [p.wall_clock_s for p in self._points],
            [p.network_utility for p in self._points],
        )

    def class_utility_series(self, traffic_class: str) -> Tuple[List[float], List[float]]:
        """(wall-clock seconds, class utility) series — Figures 3–5, middle panel."""
        times: List[float] = []
        values: List[float] = []
        for point in self._points:
            if traffic_class in point.class_utilities:
                times.append(point.wall_clock_s)
                values.append(point.class_utilities[traffic_class])
        return times, values

    def utilization_series(self) -> Tuple[List[float], List[float], List[float]]:
        """(wall-clock, actual utilization, demanded utilization) — right panel."""
        return (
            [p.wall_clock_s for p in self._points],
            [p.total_utilization for p in self._points],
            [p.demanded_utilization for p in self._points],
        )

    def utility_improvement(self) -> float:
        """Final minus initial network utility (0 when fewer than 2 points)."""
        if len(self._points) < 2:
            return 0.0
        return self._points[-1].network_utility - self._points[0].network_utility

    def as_dicts(self) -> List[dict]:
        """All trace points as plain dictionaries (for JSON reports)."""
        return [point.as_dict() for point in self._points]
