"""Routing output of a FUBAR run.

The optimizer's final :class:`~repro.core.state.AllocationState` says how
many flows of each aggregate travel each path.  Deployments (the SDN
substrate, or an MPLS controller) want the same information as *split
weights* — the fraction of the aggregate routed over each path — which is
what a :class:`RoutingTable` holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.state import AllocationState
from repro.exceptions import AllocationError
from repro.topology.graph import Path
from repro.traffic.aggregate import AggregateKey

#: Weights are normalized so this tolerance bounds the rounding error.
_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PathSplit:
    """One path of an aggregate together with its share of the aggregate's flows."""

    path: Path
    weight: float
    num_flows: int

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0 + _WEIGHT_TOLERANCE:
            raise AllocationError(f"split weight must be in (0, 1], got {self.weight!r}")
        if self.num_flows <= 0:
            raise AllocationError(f"split must carry flows, got {self.num_flows!r}")


@dataclass(frozen=True)
class AggregateRoute:
    """The complete multipath route of one aggregate."""

    key: AggregateKey
    splits: Tuple[PathSplit, ...]

    def __post_init__(self) -> None:
        if not self.splits:
            raise AllocationError(f"aggregate {self.key!r} has no path splits")
        total = sum(split.weight for split in self.splits)
        if abs(total - 1.0) > 1e-6:
            raise AllocationError(
                f"split weights of {self.key!r} sum to {total}, expected 1.0"
            )

    @property
    def num_paths(self) -> int:
        """Number of paths the aggregate is split across."""
        return len(self.splits)

    @property
    def primary_path(self) -> Path:
        """The path carrying the largest share of the aggregate."""
        return max(self.splits, key=lambda split: split.weight).path

    def weight_of(self, path: Path) -> float:
        """The share routed over *path* (0 when the path is unused)."""
        for split in self.splits:
            if split.path == tuple(path):
                return split.weight
        return 0.0


class RoutingTable:
    """Per-aggregate multipath routes produced from an allocation state."""

    def __init__(self, routes: Mapping[AggregateKey, AggregateRoute]) -> None:
        self._routes: Dict[AggregateKey, AggregateRoute] = dict(routes)

    @classmethod
    def from_state(cls, state: AllocationState) -> "RoutingTable":
        """Convert an allocation state into split-weight routes."""
        routes: Dict[AggregateKey, AggregateRoute] = {}
        for key in state.aggregate_keys:
            allocation = state.allocation_of(key)
            total_flows = sum(allocation.values())
            splits = tuple(
                PathSplit(path=path, weight=flows / total_flows, num_flows=flows)
                for path, flows in allocation.items()
            )
            routes[key] = AggregateRoute(key=key, splits=splits)
        return cls(routes)

    # ---------------------------------------------------------------- access

    def route_of(self, key: AggregateKey) -> AggregateRoute:
        """The route of one aggregate, raising when it is unknown."""
        if key not in self._routes:
            raise AllocationError(f"no route for aggregate {key!r}")
        return self._routes[key]

    @property
    def keys(self) -> Tuple[AggregateKey, ...]:
        """Keys of every routed aggregate."""
        return tuple(self._routes.keys())

    def __contains__(self, key: AggregateKey) -> bool:
        return key in self._routes

    def __iter__(self) -> Iterator[AggregateRoute]:
        return iter(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    # --------------------------------------------------------------- queries

    def multipath_aggregates(self) -> List[AggregateRoute]:
        """Routes that split their aggregate across more than one path."""
        return [route for route in self._routes.values() if route.num_paths > 1]

    def max_paths_per_aggregate(self) -> int:
        """The largest number of paths any aggregate is split across."""
        if not self._routes:
            return 0
        return max(route.num_paths for route in self._routes.values())

    def to_dict(self) -> dict:
        """Serialize to a plain dictionary (for JSON export / SDN hand-off)."""
        return {
            "routes": [
                {
                    "source": key[0],
                    "destination": key[1],
                    "traffic_class": key[2],
                    "splits": [
                        {
                            "path": list(split.path),
                            "weight": split.weight,
                            "num_flows": split.num_flows,
                        }
                        for split in route.splits
                    ],
                }
                for key, route in self._routes.items()
            ]
        }
