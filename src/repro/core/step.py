"""A single optimization step (paper Listing 2).

``perform_step(link)`` focuses on one congested link: for every bundle (flow
path) that crosses it, it determines how many flows to move (N), asks the
path generator for the global / local / link-local alternatives, tests each
candidate move by re-running the traffic model, and commits the move with the
best resulting weighted network utility — provided it actually improves on
the current solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import FubarConfig
from repro.core.state import AllocationState
from repro.paths.generator import PathGenerator
from repro.paths.pathset import PathSet
from repro.topology.graph import LinkId, Path
from repro.traffic.aggregate import AggregateKey
from repro.trafficmodel.result import TrafficModelResult
from repro.trafficmodel.waterfill import TrafficModel


@dataclass(frozen=True)
class StepResult:
    """Outcome of one call to :func:`perform_step`."""

    progress: bool
    state: AllocationState
    result: TrafficModelResult
    link: LinkId
    moved_aggregate: Optional[AggregateKey] = None
    from_path: Optional[Path] = None
    to_path: Optional[Path] = None
    num_flows_moved: int = 0
    utility_before: float = 0.0
    utility_after: float = 0.0

    @property
    def utility_gain(self) -> float:
        """Improvement in weighted network utility achieved by the committed move."""
        return self.utility_after - self.utility_before

    def describe(self) -> str:
        """One-line human-readable description of what the step did."""
        if not self.progress:
            return f"no improving move found for link {self.link!r}"
        return (
            f"moved {self.num_flows_moved} flows of {self.moved_aggregate!r} "
            f"off {self.link!r} (utility {self.utility_before:.4f} -> "
            f"{self.utility_after:.4f})"
        )


def flows_to_move(
    aggregate_num_flows: int,
    bundle_num_flows: int,
    config: FubarConfig,
    escalation_level: int,
) -> int:
    """How many flows a step moves at once (Listing 2, line 3).

    Small aggregates are moved in their entirety; for large ones N is a
    fraction of the *aggregate's* flows, escalated while the optimizer is
    stuck, and never more than the bundle currently holds.
    """
    if aggregate_num_flows <= config.small_aggregate_flows:
        return bundle_num_flows
    fraction = config.effective_fraction(escalation_level)
    n = max(1, int(round(fraction * aggregate_num_flows)))
    return min(n, bundle_num_flows)


def candidate_paths_for_bundle(
    bundle_path: Path,
    key: AggregateKey,
    link_id: LinkId,
    current_result: TrafficModelResult,
    path_sets: Dict[AggregateKey, PathSet],
    generator: PathGenerator,
    config: FubarConfig,
) -> List[Path]:
    """The alternative paths tested for one bundle crossing *link_id*.

    Always includes the three §2.4 alternatives (when they exist); when
    ``config.consider_existing_paths`` is on, paths already in the
    aggregate's path set that avoid the congested link are also tested.
    """
    source, destination = key[0], key[1]
    congested = set(current_result.congested_links)
    aggregate_congested = set(current_result.aggregate_congested_links(key))
    most_congested = current_result.most_congested_link_of(key) or link_id

    alternatives = generator.alternatives(
        source,
        destination,
        congested_links=congested,
        aggregate_congested_links=aggregate_congested,
        most_congested_link=most_congested,
        existing_paths=None,
    )
    candidates: List[Path] = [
        path for path in alternatives.candidates() if path != bundle_path
    ]
    if config.consider_existing_paths and key in path_sets:
        for path in path_sets[key].paths_avoiding(link_id):
            if path != bundle_path and path not in candidates:
                candidates.append(path)
    return candidates


def perform_step(
    link_id: LinkId,
    state: AllocationState,
    path_sets: Dict[AggregateKey, PathSet],
    model: TrafficModel,
    generator: PathGenerator,
    config: FubarConfig,
    current_result: TrafficModelResult,
    escalation_level: int = 0,
) -> StepResult:
    """Run one step of Listing 2 on the congested link *link_id*.

    Returns a :class:`StepResult`; when ``progress`` is True the returned
    state/result reflect the committed move and the moved-to path has been
    added to the aggregate's path set.
    """
    weights = config.priority_weights
    utility_before = current_result.network_utility(weights)

    best_utility = utility_before + config.min_utility_improvement
    best: Optional[Tuple[AllocationState, TrafficModelResult, AggregateKey, Path, Path, int, float]] = None

    for outcome in current_result.outcomes_on_link(link_id):
        bundle = outcome.bundle
        key = bundle.aggregate_key
        num_to_move = flows_to_move(
            bundle.aggregate.num_flows, bundle.num_flows, config, escalation_level
        )
        if num_to_move <= 0:
            continue
        candidates = candidate_paths_for_bundle(
            bundle.path, key, link_id, current_result, path_sets, generator, config
        )
        for candidate in candidates:
            trial_state = state.with_move(key, bundle.path, candidate, num_to_move)
            trial_result = model.evaluate(trial_state.bundles())
            utility = trial_result.network_utility(weights)
            if utility > best_utility:
                best_utility = utility
                best = (
                    trial_state,
                    trial_result,
                    key,
                    bundle.path,
                    candidate,
                    num_to_move,
                    utility,
                )

    if best is None:
        return StepResult(
            progress=False,
            state=state,
            result=current_result,
            link=link_id,
            utility_before=utility_before,
            utility_after=utility_before,
        )

    new_state, new_result, key, from_path, to_path, moved, utility_after = best
    if key in path_sets:
        path_sets[key].add(to_path)
    return StepResult(
        progress=True,
        state=new_state,
        result=new_result,
        link=link_id,
        moved_aggregate=key,
        from_path=from_path,
        to_path=to_path,
        num_flows_moved=moved,
        utility_before=utility_before,
        utility_after=utility_after,
    )
