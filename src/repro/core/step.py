"""A single optimization step (paper Listing 2).

``perform_step(link)`` focuses on one congested link: for every bundle (flow
path) that crosses it, it determines how many flows to move (N), asks the
path generator for the global / local / link-local alternatives, tests each
candidate move by re-running the traffic model, and commits the move with the
best resulting weighted network utility — provided it actually improves on
the current solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.config import FubarConfig
from repro.core.state import AllocationState
from repro.paths.generator import PathGenerator
from repro.paths.pathset import PathSet
from repro.topology.graph import LinkId, Path
from repro.traffic.aggregate import AggregateKey
from repro.trafficmodel.bundle import Bundle
from repro.trafficmodel.compiled import BatchedCandidateScorer, CompiledBundles
from repro.trafficmodel.result import TrafficModelResult
from repro.trafficmodel.waterfill import TrafficModel

#: A chosen move: (aggregate key, from path, to path, flows moved).
_Move = Tuple[AggregateKey, Path, Path, int]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one call to :func:`perform_step`."""

    progress: bool
    state: AllocationState
    result: TrafficModelResult
    link: LinkId
    moved_aggregate: Optional[AggregateKey] = None
    from_path: Optional[Path] = None
    to_path: Optional[Path] = None
    num_flows_moved: int = 0
    utility_before: float = 0.0
    utility_after: float = 0.0

    @property
    def utility_gain(self) -> float:
        """Improvement in weighted network utility achieved by the committed move."""
        return self.utility_after - self.utility_before

    def describe(self) -> str:
        """One-line human-readable description of what the step did."""
        if not self.progress:
            return f"no improving move found for link {self.link!r}"
        return (
            f"moved {self.num_flows_moved} flows of {self.moved_aggregate!r} "
            f"off {self.link!r} (utility {self.utility_before:.4f} -> "
            f"{self.utility_after:.4f})"
        )


def flows_to_move(
    aggregate_num_flows: int,
    bundle_num_flows: int,
    config: FubarConfig,
    escalation_level: int,
) -> int:
    """How many flows a step moves at once (Listing 2, line 3).

    Small aggregates are moved in their entirety; for large ones N is a
    fraction of the *aggregate's* flows, escalated while the optimizer is
    stuck, and never more than the bundle currently holds.
    """
    if aggregate_num_flows <= config.small_aggregate_flows:
        return bundle_num_flows
    fraction = config.effective_fraction(escalation_level)
    n = max(1, int(round(fraction * aggregate_num_flows)))
    return min(n, bundle_num_flows)


def candidate_paths_for_bundle(
    bundle_path: Path,
    key: AggregateKey,
    link_id: LinkId,
    current_result: TrafficModelResult,
    path_sets: Dict[AggregateKey, PathSet],
    generator: PathGenerator,
    config: FubarConfig,
) -> List[Path]:
    """The alternative paths tested for one bundle crossing *link_id*.

    Always includes the three §2.4 alternatives (when they exist); when
    ``config.consider_existing_paths`` is on, paths already in the
    aggregate's path set that avoid the congested link are also tested.
    """
    source, destination = key[0], key[1]
    congested = set(current_result.congested_links)
    aggregate_congested = set(current_result.aggregate_congested_links(key))
    most_congested = current_result.most_congested_link_of(key) or link_id

    alternatives = generator.alternatives(
        source,
        destination,
        congested_links=congested,
        aggregate_congested_links=aggregate_congested,
        most_congested_link=most_congested,
        existing_paths=None,
    )
    candidates: List[Path] = [
        path for path in alternatives.candidates() if path != bundle_path
    ]
    if config.consider_existing_paths and key in path_sets:
        for path in path_sets[key].paths_avoiding(link_id):
            if path != bundle_path and path not in candidates:
                candidates.append(path)
    return candidates


def _candidate_moves(
    link_id: LinkId,
    state: AllocationState,
    path_sets: Dict[AggregateKey, PathSet],
    generator: PathGenerator,
    config: FubarConfig,
    current_result: TrafficModelResult,
    escalation_level: int,
) -> Iterator[Tuple[Bundle, Path, int]]:
    """Yield every (bundle, candidate path, flows to move) tested by a step."""
    for outcome in current_result.outcomes_on_link(link_id):
        bundle = outcome.bundle
        num_to_move = flows_to_move(
            bundle.aggregate.num_flows, bundle.num_flows, config, escalation_level
        )
        if num_to_move <= 0:
            continue
        candidates = candidate_paths_for_bundle(
            bundle.path,
            bundle.aggregate_key,
            link_id,
            current_result,
            path_sets,
            generator,
            config,
        )
        for candidate in candidates:
            yield bundle, candidate, num_to_move


def _best_move_incremental(
    link_id: LinkId,
    state: AllocationState,
    path_sets: Dict[AggregateKey, PathSet],
    model: TrafficModel,
    generator: PathGenerator,
    config: FubarConfig,
    current_result: TrafficModelResult,
    escalation_level: int,
    compiled_base: Optional[CompiledBundles],
) -> Optional[_Move]:
    """Score candidates through the compiled engine's delta path.

    The base bundle list is compiled once; every candidate patches only the
    one or two bundles its move changes, and is scored with the vectorized
    utility roll-up — no result objects, no graph walks.

    With ``config.use_batched_scorer`` (the default) all candidate patches
    are scored through stacked :meth:`~repro.trafficmodel.compiled.
    CompiledTrafficModel.solve_batched` calls; the batched scores are
    bitwise equal to per-move solves, so both branches select the same
    move (tests/test_batched_scorer.py).
    """
    engine = model.engine
    weights = config.priority_weights
    if compiled_base is None:
        compiled_base = engine.compile(state.bundles())
    base_rates = np.asarray(
        [outcome.rate_bps for outcome in current_result.outcomes], dtype=float
    )
    if base_rates.shape[0] != len(compiled_base):
        raise ValueError(
            "current_result does not correspond to the compiled base "
            f"({base_rates.shape[0]} outcomes vs {len(compiled_base)} bundles)"
        )
    best_score = engine.weighted_utility(compiled_base, base_rates, weights)
    best_score += config.min_utility_improvement
    best: Optional[_Move] = None

    if config.use_batched_scorer:
        moves: List[_Move] = []
        deltas = []
        for bundle, candidate, num_to_move in _candidate_moves(
            link_id, state, path_sets, generator, config, current_result,
            escalation_level,
        ):
            key = bundle.aggregate_key
            moves.append((key, bundle.path, candidate, num_to_move))
            deltas.append(state.move_delta(key, bundle.path, candidate, num_to_move))
        if not moves:
            return None
        scorer = BatchedCandidateScorer(engine, compiled_base, weights)
        for move, score in zip(moves, scorer.score(deltas)):
            if score > best_score:
                best_score = score
                best = move
        return best

    for bundle, candidate, num_to_move in _candidate_moves(
        link_id, state, path_sets, generator, config, current_result, escalation_level
    ):
        key = bundle.aggregate_key
        delta = state.move_delta(key, bundle.path, candidate, num_to_move)
        patched = engine.compile_patched(compiled_base, delta)
        solution = engine.solve(patched)
        score = engine.weighted_utility(patched, solution.rates, weights)
        if score > best_score:
            best_score = score
            best = (key, bundle.path, candidate, num_to_move)
    return best


def _best_move_full(
    link_id: LinkId,
    state: AllocationState,
    path_sets: Dict[AggregateKey, PathSet],
    model: TrafficModel,
    generator: PathGenerator,
    config: FubarConfig,
    current_result: TrafficModelResult,
    escalation_level: int,
) -> Optional[Tuple[_Move, AllocationState, TrafficModelResult]]:
    """Score candidates by rebuilding and evaluating the full bundle list
    (the pre-compiled-engine behaviour, kept for benchmarks/ablations).

    Returns the winning move together with its already-evaluated trial
    state/result so the caller does not pay a second full evaluation."""
    weights = config.priority_weights
    best_utility = current_result.network_utility(weights)
    best_utility += config.min_utility_improvement
    best: Optional[Tuple[_Move, AllocationState, TrafficModelResult]] = None

    for bundle, candidate, num_to_move in _candidate_moves(
        link_id, state, path_sets, generator, config, current_result, escalation_level
    ):
        key = bundle.aggregate_key
        trial_state = state.with_move(key, bundle.path, candidate, num_to_move)
        trial_result = model.evaluate(trial_state.bundles())
        utility = trial_result.network_utility(weights)
        if utility > best_utility:
            best_utility = utility
            best = ((key, bundle.path, candidate, num_to_move), trial_state, trial_result)
    return best


def perform_step(
    link_id: LinkId,
    state: AllocationState,
    path_sets: Dict[AggregateKey, PathSet],
    model: TrafficModel,
    generator: PathGenerator,
    config: FubarConfig,
    current_result: TrafficModelResult,
    escalation_level: int = 0,
    compiled_base: Optional[CompiledBundles] = None,
) -> StepResult:
    """Run one step of Listing 2 on the congested link *link_id*.

    Candidate moves are scored through the compiled engine's incremental
    path (``config.use_incremental_model``, the default) or by full
    re-evaluation.  In the incremental case the winning move is committed by
    evaluating the moved state once (the patched arrays served scoring
    only); the full path reuses the winner's trial result directly.  Either
    way the returned result reflects the canonical bundle ordering of the
    new state.

    Returns a :class:`StepResult`; when ``progress`` is True the returned
    state/result reflect the committed move and the moved-to path has been
    added to the aggregate's path set.

    ``compiled_base`` optionally passes a pre-compiled base bundle list (the
    optimizer compiles the state once per main-loop iteration and shares it
    across the congested links it visits).
    """
    weights = config.priority_weights
    utility_before = current_result.network_utility(weights)

    new_state: Optional[AllocationState] = None
    new_result: Optional[TrafficModelResult] = None
    if config.use_incremental_model:
        best = _best_move_incremental(
            link_id,
            state,
            path_sets,
            model,
            generator,
            config,
            current_result,
            escalation_level,
            compiled_base,
        )
    else:
        full_best = _best_move_full(
            link_id,
            state,
            path_sets,
            model,
            generator,
            config,
            current_result,
            escalation_level,
        )
        best = None
        if full_best is not None:
            best, new_state, new_result = full_best

    if best is None:
        return StepResult(
            progress=False,
            state=state,
            result=current_result,
            link=link_id,
            utility_before=utility_before,
            utility_after=utility_before,
        )

    key, from_path, to_path, moved = best
    if new_state is None or new_result is None:
        # Incremental scoring worked on patched arrays; commit the winner by
        # evaluating the moved state once, in its canonical bundle ordering.
        new_state = state.with_move(key, from_path, to_path, moved)
        new_result = model.evaluate(new_state.bundles())
    if key in path_sets:
        path_sets[key].add(to_path)
    return StepResult(
        progress=True,
        state=new_state,
        result=new_result,
        link=link_id,
        moved_aggregate=key,
        from_path=from_path,
        to_path=to_path,
        num_flows_moved=moved,
        utility_before=utility_before,
        utility_after=new_result.network_utility(weights),
    )
