"""Forwarding rules derived from a FUBAR routing table.

The offline controller's output (a :class:`~repro.core.routing.RoutingTable`)
must eventually be installed in switches.  In an SDN deployment each switch
holds, per aggregate, a weighted next-hop group: the fraction of the
aggregate's flows arriving at that switch that should leave over each
outgoing link.  This module compiles a routing table into exactly those
per-switch rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.routing import RoutingTable
from repro.exceptions import ReproError
from repro.traffic.aggregate import AggregateKey


@dataclass(frozen=True)
class WeightedNextHop:
    """One next hop of a forwarding rule together with its traffic share."""

    next_hop: str
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0 + 1e-9:
            raise ReproError(f"next-hop weight must be in (0, 1], got {self.weight!r}")


@dataclass(frozen=True)
class ForwardingRule:
    """The forwarding entry for one aggregate at one switch."""

    switch: str
    aggregate: AggregateKey
    next_hops: Tuple[WeightedNextHop, ...]

    def __post_init__(self) -> None:
        if not self.next_hops:
            raise ReproError(
                f"rule for {self.aggregate!r} at {self.switch!r} has no next hops"
            )
        total = sum(hop.weight for hop in self.next_hops)
        if abs(total - 1.0) > 1e-6:
            raise ReproError(
                f"next-hop weights at {self.switch!r} for {self.aggregate!r} "
                f"sum to {total}, expected 1.0"
            )

    def weight_towards(self, next_hop: str) -> float:
        """Share of the aggregate forwarded to *next_hop* (0 when absent)."""
        for hop in self.next_hops:
            if hop.next_hop == next_hop:
                return hop.weight
        return 0.0


def compile_rules(routing: RoutingTable) -> Dict[str, List[ForwardingRule]]:
    """Compile a routing table into per-switch forwarding rules.

    For every aggregate and every switch its paths traverse (except the
    egress), the rule's next-hop weights are the shares of the aggregate's
    flows that continue to each neighbour.  Shares are computed from the
    flow counts of the path splits, so they are consistent with what the
    optimizer actually allocated.
    """
    rules: Dict[str, List[ForwardingRule]] = {}
    for route in routing:
        # Flows arriving at a node may have come over different paths; the
        # rule only depends on the share continuing towards each next hop.
        outgoing: Dict[str, Dict[str, int]] = {}
        for split in route.splits:
            for node, next_hop in zip(split.path, split.path[1:]):
                outgoing.setdefault(node, {})
                outgoing[node][next_hop] = (
                    outgoing[node].get(next_hop, 0) + split.num_flows
                )
        for node, next_hop_flows in outgoing.items():
            total = sum(next_hop_flows.values())
            next_hops = tuple(
                WeightedNextHop(next_hop=name, weight=flows / total)
                for name, flows in sorted(next_hop_flows.items())
            )
            rules.setdefault(node, []).append(
                ForwardingRule(switch=node, aggregate=route.key, next_hops=next_hops)
            )
    return rules


def rules_for_switch(
    rules: Mapping[str, List[ForwardingRule]], switch: str
) -> List[ForwardingRule]:
    """The rules destined for one switch (empty list when it needs none)."""
    return list(rules.get(switch, []))
