"""Simulated SDN substrate: switches, rules, controller, deployment."""

from repro.sdn.controller import InstallReport, SdnController
from repro.sdn.deployment import DeploymentReport, deploy_plan, feed_model_result, remeasure
from repro.sdn.rules import ForwardingRule, WeightedNextHop, compile_rules, rules_for_switch
from repro.sdn.switch import RuleCounters, Switch

__all__ = [
    "DeploymentReport",
    "ForwardingRule",
    "InstallReport",
    "RuleCounters",
    "SdnController",
    "Switch",
    "WeightedNextHop",
    "compile_rules",
    "deploy_plan",
    "feed_model_result",
    "remeasure",
    "rules_for_switch",
]
