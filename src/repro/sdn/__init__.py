"""Simulated SDN substrate: switches, rules, controller, deployment."""

from repro.sdn.controller import SdnController
from repro.sdn.deployment import DeploymentReport, deploy_plan, remeasure
from repro.sdn.rules import ForwardingRule, WeightedNextHop, compile_rules, rules_for_switch
from repro.sdn.switch import RuleCounters, Switch

__all__ = [
    "DeploymentReport",
    "ForwardingRule",
    "RuleCounters",
    "SdnController",
    "Switch",
    "WeightedNextHop",
    "compile_rules",
    "deploy_plan",
    "remeasure",
    "rules_for_switch",
]
