"""Deploying a FUBAR plan onto the simulated SDN substrate.

This closes the loop the paper's conclusion sketches: the *offline*
controller (FUBAR) computes paths and splits; the *online* controller
installs them and keeps measuring.  :func:`deploy_plan` installs a plan's
routing table, drives the traffic predicted by the traffic model through the
switches, and returns a deployment report; a follow-up call to
:func:`remeasure` produces the traffic matrix the next FUBAR cycle would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.controller import FubarPlan
from repro.exceptions import MeasurementError
from repro.sdn.controller import InstallReport, SdnController
from repro.topology.graph import LinkId, Network
from repro.traffic.matrix import TrafficMatrix
from repro.trafficmodel.result import TrafficModelResult


@dataclass
class DeploymentReport:
    """What happened when a plan was pushed to the switches."""

    install: InstallReport
    num_aggregates: int
    link_loads_bps: Dict[LinkId, float]
    overloaded_links: Dict[LinkId, float]

    @property
    def num_rules_installed(self) -> int:
        """Total rules in the flow tables after the install."""
        return self.install.rules_installed

    @property
    def has_overload(self) -> bool:
        """True when any link would carry more than its capacity."""
        return bool(self.overloaded_links)


def _link_loads_from_result(result: TrafficModelResult) -> Dict[LinkId, float]:
    return {
        link.link_id: float(result.link_loads_bps[link.index])
        for link in result.network.links
    }


def feed_model_result(
    controller: SdnController,
    model_result: TrafficModelResult,
    interval_s: float = 60.0,
) -> Dict:
    """Feed a traffic-model result into the ingress-switch counters.

    The per-bundle achieved rates are rolled up per aggregate and recorded as
    one measurement interval of traffic (zero-rate aggregates are skipped —
    they would be omitted from the measured matrix anyway).  Shared by
    :func:`deploy_plan` and the control loop
    (:mod:`repro.dynamics.loop`), so the measurement-feed semantics cannot
    drift between the two.  Returns the per-aggregate rate roll-up.
    """
    per_aggregate_rate: Dict = {}
    per_aggregate_flows: Dict = {}
    for outcome in model_result.outcomes:
        key = outcome.bundle.aggregate_key
        per_aggregate_rate[key] = per_aggregate_rate.get(key, 0.0) + outcome.rate_bps
        per_aggregate_flows[key] = (
            per_aggregate_flows.get(key, 0) + outcome.bundle.num_flows
        )
    for key, rate in per_aggregate_rate.items():
        if rate <= 0.0:
            continue
        controller.record_aggregate_traffic(
            key, rate, per_aggregate_flows[key], interval_s=interval_s
        )
    return per_aggregate_rate


def deploy_plan(
    controller: SdnController,
    plan: FubarPlan,
    measurement_interval_s: float = 60.0,
) -> DeploymentReport:
    """Install *plan* on *controller* and replay the modelled traffic through it.

    The per-aggregate rates predicted by the traffic model become the
    counters the switches would observe during one measurement interval.
    """
    network = controller.network
    if network is not plan.result.network and network.name != plan.result.network.name:
        raise MeasurementError(
            "the plan was computed for a different network than the controller manages"
        )
    install = controller.install_routing(plan.routing)

    model_result = plan.result.model_result
    per_aggregate_rate = feed_model_result(
        controller, model_result, interval_s=measurement_interval_s
    )

    link_loads = _link_loads_from_result(model_result)
    overloaded = {
        link.link_id: link_loads[link.link_id] / link.capacity_bps
        for link in network.links
        if link_loads[link.link_id] > link.capacity_bps * (1.0 + 1e-9)
    }
    return DeploymentReport(
        install=install,
        num_aggregates=len(per_aggregate_rate),
        link_loads_bps=link_loads,
        overloaded_links=overloaded,
    )


def remeasure(
    controller: SdnController,
    name: str = "remeasured",
    relax_delay_factor: Optional[float] = None,
) -> TrafficMatrix:
    """Produce the traffic matrix the next optimization cycle would start from."""
    return controller.measured_traffic_matrix(
        name=name, relax_delay_factor=relax_delay_factor
    )
