"""A simulated SDN switch.

Each switch holds a flow table of :class:`~repro.sdn.rules.ForwardingRule`
entries and per-aggregate byte/flow counters.  The counters are what the
controller's measurement pipeline reads (paper §2.1): the switch is the
source of "periodic per-aggregate bandwidth measurements and approximate
flow counts".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MeasurementError, ReproError
from repro.sdn.rules import ForwardingRule
from repro.traffic.aggregate import AggregateKey


@dataclass
class RuleCounters:
    """Byte and flow counters attached to one installed rule."""

    bytes_total: float = 0.0
    rate_bps: float = 0.0
    num_flows: int = 0

    def observe(self, rate_bps: float, num_flows: int, interval_s: float) -> None:
        """Accumulate one measurement interval of traffic through the rule."""
        if rate_bps < 0.0 or num_flows < 0 or interval_s <= 0.0:
            raise MeasurementError(
                "rate and flow count must be non-negative and the interval positive"
            )
        self.rate_bps = rate_bps
        self.num_flows = num_flows
        self.bytes_total += rate_bps * interval_s / 8.0

    def reset_rate(self) -> None:
        """Clear the instantaneous rate/flow reading (byte totals persist)."""
        self.rate_bps = 0.0
        self.num_flows = 0


class Switch:
    """A single simulated switch identified by its node name."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ReproError("switch name must be non-empty")
        self.name = name
        self._rules: Dict[AggregateKey, ForwardingRule] = {}
        self._counters: Dict[AggregateKey, RuleCounters] = {}

    # ----------------------------------------------------------------- rules

    def install(self, rule: ForwardingRule) -> None:
        """Install (or replace) the rule for one aggregate."""
        if rule.switch != self.name:
            raise ReproError(
                f"rule for switch {rule.switch!r} installed on switch {self.name!r}"
            )
        self._rules[rule.aggregate] = rule
        self._counters.setdefault(rule.aggregate, RuleCounters())

    def uninstall(self, aggregate: AggregateKey) -> None:
        """Remove the rule (and counters) for one aggregate if present."""
        self._rules.pop(aggregate, None)
        self._counters.pop(aggregate, None)

    def clear(self) -> None:
        """Remove every rule and counter (a fresh flow table)."""
        self._rules.clear()
        self._counters.clear()

    def rule_for(self, aggregate: AggregateKey) -> Optional[ForwardingRule]:
        """The installed rule for one aggregate, or None."""
        return self._rules.get(aggregate)

    @property
    def rules(self) -> Tuple[ForwardingRule, ...]:
        """All installed rules."""
        return tuple(self._rules.values())

    @property
    def num_rules(self) -> int:
        """Number of installed rules."""
        return len(self._rules)

    # -------------------------------------------------------------- counters

    def observe(
        self, aggregate: AggregateKey, rate_bps: float, num_flows: int, interval_s: float
    ) -> None:
        """Record traffic of one aggregate passing through this switch."""
        if aggregate not in self._rules:
            raise MeasurementError(
                f"switch {self.name!r} has no rule for aggregate {aggregate!r}"
            )
        self._counters[aggregate].observe(rate_bps, num_flows, interval_s)

    def counters_for(self, aggregate: AggregateKey) -> RuleCounters:
        """The counters attached to one aggregate's rule."""
        if aggregate not in self._counters:
            raise MeasurementError(
                f"switch {self.name!r} has no counters for aggregate {aggregate!r}"
            )
        return self._counters[aggregate]

    def all_counters(self) -> Dict[AggregateKey, RuleCounters]:
        """A copy of every aggregate's counters."""
        return dict(self._counters)

    def __repr__(self) -> str:
        return f"Switch(name={self.name!r}, rules={self.num_rules})"
