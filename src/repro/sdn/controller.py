"""The simulated SDN control plane.

Paper §2.1 and §5: FUBAR sits next to an SDN controller — the controller
installs the computed paths in switches and collects the per-aggregate
measurements FUBAR needs for the next optimization cycle.  This module
simulates that controller: it owns one :class:`~repro.sdn.switch.Switch` per
POP, installs compiled forwarding rules, and rebuilds a measured
:class:`~repro.traffic.matrix.TrafficMatrix` from ingress-switch counters
("the measurements required will be taken hierarchically" — each ingress
switch reports only its own aggregates, and the controller merges them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.routing import RoutingTable
from repro.exceptions import MeasurementError, ReproError
from repro.sdn.rules import ForwardingRule, compile_rules
from repro.sdn.switch import Switch
from repro.topology.graph import Network
from repro.traffic.aggregate import Aggregate, AggregateKey
from repro.traffic.classes import default_traffic_classes
from repro.traffic.matrix import TrafficMatrix


class SdnController:
    """Owns the switches of one network and mediates rules and measurements."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._switches: Dict[str, Switch] = {
            name: Switch(name) for name in network.node_names
        }
        self._installed_routing: Optional[RoutingTable] = None

    # -------------------------------------------------------------- switches

    def switch(self, name: str) -> Switch:
        """The switch at POP *name*."""
        if name not in self._switches:
            raise ReproError(f"no switch named {name!r}")
        return self._switches[name]

    @property
    def switches(self) -> Tuple[Switch, ...]:
        """Every switch, in node order."""
        return tuple(self._switches.values())

    @property
    def num_rules_installed(self) -> int:
        """Total rules across all switches."""
        return sum(switch.num_rules for switch in self._switches.values())

    # ----------------------------------------------------------------- rules

    def install_routing(self, routing: RoutingTable) -> int:
        """Compile *routing* and install the rules on every switch.

        Returns the number of rules installed.  Previously installed rules
        are cleared first — the offline controller replaces the whole
        configuration each cycle.
        """
        for switch in self._switches.values():
            switch.clear()
        compiled = compile_rules(routing)
        installed = 0
        for node, rules in compiled.items():
            switch = self.switch(node)
            for rule in rules:
                switch.install(rule)
                installed += 1
        self._installed_routing = routing
        return installed

    @property
    def installed_routing(self) -> Optional[RoutingTable]:
        """The routing table currently deployed (None before the first install)."""
        return self._installed_routing

    # ----------------------------------------------------------- measurement

    def record_aggregate_traffic(
        self,
        aggregate: AggregateKey,
        rate_bps: float,
        num_flows: int,
        interval_s: float = 60.0,
    ) -> None:
        """Feed one aggregate's observed traffic into its ingress switch counters."""
        source = aggregate[0]
        switch = self.switch(source)
        if switch.rule_for(aggregate) is None:
            raise MeasurementError(
                f"aggregate {aggregate!r} has no installed rule at its ingress "
                f"switch {source!r}"
            )
        switch.observe(aggregate, rate_bps, num_flows, interval_s)

    def measured_traffic_matrix(
        self,
        name: str = "measured",
        relax_delay_factor: Optional[float] = None,
    ) -> TrafficMatrix:
        """Rebuild a traffic matrix from ingress-switch counters.

        Each aggregate's per-flow demand is its measured rate divided by its
        measured flow count; the utility shape comes from the class presets
        (the controller knows the class from the rule key).  Aggregates whose
        counters saw no traffic are omitted.
        """
        classes = default_traffic_classes(relax_delay_factor=relax_delay_factor)
        matrix = TrafficMatrix(name=name)
        for switch in self._switches.values():
            for key, counters in switch.all_counters().items():
                if key[0] != switch.name:
                    # Only ingress switches contribute, so transit counters
                    # are not double-counted (hierarchical measurement).
                    continue
                if counters.num_flows <= 0 or counters.rate_bps <= 0.0:
                    continue
                class_name = key[2]
                if class_name not in classes:
                    raise MeasurementError(f"unknown traffic class {class_name!r}")
                per_flow = counters.rate_bps / counters.num_flows
                utility = classes[class_name].utility.with_demand(per_flow)
                matrix.add(
                    Aggregate(
                        source=key[0],
                        destination=key[1],
                        traffic_class=class_name,
                        num_flows=counters.num_flows,
                        utility=utility,
                    )
                )
        return matrix

    def reset_counters(self) -> None:
        """Clear the instantaneous rate readings on every switch."""
        for switch in self._switches.values():
            for counters in switch.all_counters().values():
                counters.reset_rate()
