"""The simulated SDN control plane.

Paper §2.1 and §5: FUBAR sits next to an SDN controller — the controller
installs the computed paths in switches and collects the per-aggregate
measurements FUBAR needs for the next optimization cycle.  This module
simulates that controller: it owns one :class:`~repro.sdn.switch.Switch` per
POP, installs compiled forwarding rules, and rebuilds a measured
:class:`~repro.traffic.matrix.TrafficMatrix` from ingress-switch counters
("the measurements required will be taken hierarchically" — each ingress
switch reports only its own aggregates, and the controller merges them).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import AbstractSet, Dict, Mapping, Optional, Tuple

from repro.core.routing import RoutingTable
from repro.exceptions import MeasurementError, ReproError
from repro.sdn.rules import ForwardingRule, compile_rules
from repro.sdn.switch import Switch
from repro.topology.graph import Network
from repro.traffic.aggregate import Aggregate, AggregateKey
from repro.traffic.classes import default_traffic_classes
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class InstallReport:
    """Rule-churn accounting of one :meth:`SdnController.install_routing` call.

    ``rules_installed`` is the total flow-table size after the install; the
    remaining counts classify what the differential install did to each rule:
    freshly added, removed as stale, updated in place (same aggregate and
    switch, different next-hop weights) or left untouched.  Updated and
    unchanged rules keep their byte counters — only removed rules lose them.

    ``rules_invalidated`` counts rules force-uninstalled *before* the
    differential install because a topology change killed their next-hop
    link (:meth:`SdnController.uninstall_rules_crossing`); it is 0 for
    ordinary demand-only cycles.
    """

    rules_installed: int
    rules_added: int
    rules_removed: int
    rules_updated: int
    rules_unchanged: int
    rules_invalidated: int = 0

    @property
    def churn(self) -> int:
        """Flow-table writes the install caused (adds + removes + updates +
        failure invalidations)."""
        return (
            self.rules_added
            + self.rules_removed
            + self.rules_updated
            + self.rules_invalidated
        )

    @property
    def churn_fraction(self) -> float:
        """Churn relative to the installed table size (0 on an empty table)."""
        if self.rules_installed == 0:
            return 0.0
        return self.churn / self.rules_installed

    def as_dict(self) -> Dict[str, object]:
        return {
            "rules_installed": self.rules_installed,
            "rules_added": self.rules_added,
            "rules_removed": self.rules_removed,
            "rules_updated": self.rules_updated,
            "rules_unchanged": self.rules_unchanged,
            "rules_invalidated": self.rules_invalidated,
            "churn": self.churn,
            "churn_fraction": self.churn_fraction,
        }

    def with_invalidated(self, rules_invalidated: int) -> "InstallReport":
        """This report with the pre-install failure invalidations folded in."""
        return replace(self, rules_invalidated=rules_invalidated)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "InstallReport":
        """Rebuild a report from its :meth:`as_dict` payload.

        Derived fields (``churn``, ``churn_fraction``) are recomputed from
        the counts, not read back.
        """
        return cls(
            rules_installed=int(data["rules_installed"]),  # type: ignore[call-overload]
            rules_added=int(data["rules_added"]),  # type: ignore[call-overload]
            rules_removed=int(data["rules_removed"]),  # type: ignore[call-overload]
            rules_updated=int(data["rules_updated"]),  # type: ignore[call-overload]
            rules_unchanged=int(data["rules_unchanged"]),  # type: ignore[call-overload]
            rules_invalidated=int(data.get("rules_invalidated", 0)),  # type: ignore[call-overload]
        )


class SdnController:
    """Owns the switches of one network and mediates rules and measurements."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._switches: Dict[str, Switch] = {
            name: Switch(name) for name in network.node_names
        }
        self._installed_routing: Optional[RoutingTable] = None

    # -------------------------------------------------------------- switches

    def switch(self, name: str) -> Switch:
        """The switch at POP *name*."""
        if name not in self._switches:
            raise ReproError(f"no switch named {name!r}")
        return self._switches[name]

    @property
    def switches(self) -> Tuple[Switch, ...]:
        """Every switch, in node order."""
        return tuple(self._switches.values())

    @property
    def num_rules_installed(self) -> int:
        """Total rules across all switches."""
        return sum(switch.num_rules for switch in self._switches.values())

    # ----------------------------------------------------------------- rules

    def install_routing(self, routing: RoutingTable) -> InstallReport:
        """Compile *routing* and differentially install the rules.

        Each switch's flow table is reconciled against the compiled rules:
        stale rules are uninstalled, changed rules are replaced in place and
        identical rules are left alone.  Rules that survive (updated or
        unchanged) keep their counters — :class:`~repro.sdn.switch.RuleCounters`
        byte totals persist across cycles, as they would on real hardware;
        wiping the whole table every cycle (the old behaviour) silently
        zeroed them.  Returns the :class:`InstallReport` churn accounting.
        """
        compiled = compile_rules(routing)
        unknown = sorted(node for node in compiled if node not in self._switches)
        if unknown:
            raise ReproError(
                f"routing table references switches this controller does not "
                f"manage: {unknown}"
            )
        desired: Dict[str, Dict[AggregateKey, ForwardingRule]] = {
            node: {rule.aggregate: rule for rule in rules}
            for node, rules in compiled.items()
        }
        added = removed = updated = unchanged = 0
        for name, switch in self._switches.items():
            wanted = desired.get(name, {})
            for aggregate in [
                rule.aggregate for rule in switch.rules if rule.aggregate not in wanted
            ]:
                switch.uninstall(aggregate)
                removed += 1
            for aggregate, rule in wanted.items():
                current = switch.rule_for(aggregate)
                if current is None:
                    switch.install(rule)
                    added += 1
                elif current != rule:
                    switch.install(rule)
                    updated += 1
                else:
                    unchanged += 1
        self._installed_routing = routing
        return InstallReport(
            rules_installed=self.num_rules_installed,
            rules_added=added,
            rules_removed=removed,
            rules_updated=updated,
            rules_unchanged=unchanged,
        )

    def uninstall_rules_crossing(self, dead_links: AbstractSet[Tuple[str, str]]) -> int:
        """Uninstall every rule forwarding over one of *dead_links*.

        This is the data-plane consequence of a topology failure: a rule at
        switch *u* whose next-hop group includes neighbour *v* is dead the
        moment link (u, v) goes down, and real switches drop it (fast
        failover) rather than blackhole traffic.  Counters of uninstalled
        rules are lost, exactly like an ordinary uninstall; surviving rules
        keep theirs.  The deployed :attr:`installed_routing` is filtered in
        step: routes with a split over a dead link lose their forwarding and
        are removed, so the advertised routing never names paths the flow
        tables can no longer carry.  Returns the number of rules removed —
        reported by the control loop as
        :attr:`InstallReport.rules_invalidated`.
        """
        removed = 0
        for name, switch in self._switches.items():
            doomed = [
                rule.aggregate
                for rule in switch.rules
                if any((name, hop.next_hop) in dead_links for hop in rule.next_hops)
            ]
            for aggregate in doomed:
                switch.uninstall(aggregate)
                removed += 1
        if self._installed_routing is not None:
            surviving = {
                route.key: route
                for route in self._installed_routing
                if not any(
                    (a, b) in dead_links
                    for split in route.splits
                    for a, b in zip(split.path, split.path[1:])
                )
            }
            self._installed_routing = RoutingTable(surviving)
        return removed

    @property
    def installed_routing(self) -> Optional[RoutingTable]:
        """The routing table currently deployed (None before the first install)."""
        return self._installed_routing

    # ----------------------------------------------------------- measurement

    def record_aggregate_traffic(
        self,
        aggregate: AggregateKey,
        rate_bps: float,
        num_flows: int,
        interval_s: float = 60.0,
    ) -> None:
        """Feed one aggregate's observed traffic into its ingress switch counters."""
        source = aggregate[0]
        switch = self.switch(source)
        if switch.rule_for(aggregate) is None:
            raise MeasurementError(
                f"aggregate {aggregate!r} has no installed rule at its ingress "
                f"switch {source!r}"
            )
        switch.observe(aggregate, rate_bps, num_flows, interval_s)

    def measured_traffic_matrix(
        self,
        name: str = "measured",
        relax_delay_factor: Optional[float] = None,
    ) -> TrafficMatrix:
        """Rebuild a traffic matrix from ingress-switch counters.

        Each aggregate's per-flow demand is its measured rate divided by its
        measured flow count; the utility shape comes from the class presets
        (the controller knows the class from the rule key).  Aggregates whose
        counters saw no traffic are omitted.
        """
        classes = default_traffic_classes(relax_delay_factor=relax_delay_factor)
        matrix = TrafficMatrix(name=name)
        for switch in self._switches.values():
            for key, counters in switch.all_counters().items():
                if key[0] != switch.name:
                    # Only ingress switches contribute, so transit counters
                    # are not double-counted (hierarchical measurement).
                    continue
                if counters.num_flows <= 0 or counters.rate_bps <= 0.0:
                    continue
                class_name = key[2]
                if class_name not in classes:
                    raise MeasurementError(f"unknown traffic class {class_name!r}")
                per_flow = counters.rate_bps / counters.num_flows
                utility = classes[class_name].utility.with_demand(per_flow)
                matrix.add(
                    Aggregate(
                        source=key[0],
                        destination=key[1],
                        traffic_class=class_name,
                        num_flows=counters.num_flows,
                        utility=utility,
                    )
                )
        return matrix

    def reset_counters(self) -> None:
        """Clear the instantaneous rate readings on every switch."""
        for switch in self._switches.values():
            for counters in switch.all_counters().values():
                counters.reset_rate()
