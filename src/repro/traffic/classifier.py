"""Heuristic traffic classification.

Paper §1: *"We classify traffic with crude heuristics supplemented by
operator knowledge when that is available."*  This module provides exactly
that: a port/protocol-based heuristic classifier plus an operator-override
table, used by the simulated SDN measurement pipeline to label flow records
before they are folded into aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.exceptions import TrafficError
from repro.traffic.classes import BULK, LARGE_TRANSFER, REAL_TIME

#: Well-known ports that strongly suggest interactive / real-time traffic.
REAL_TIME_PORTS = frozenset(
    {
        5060,  # SIP
        5061,  # SIP over TLS
        3478,  # STUN
        3479,
        5004,  # RTP
        5005,  # RTCP
        1720,  # H.323
        10000,  # common VoIP RTP base
        19302,  # Google STUN
    }
)

#: Ports that suggest bulk / file-transfer traffic.
BULK_PORTS = frozenset(
    {
        20,  # FTP data
        21,  # FTP control
        22,  # SFTP / SCP
        80,  # HTTP
        443,  # HTTPS
        873,  # rsync
        8080,
        8443,
        3128,  # proxies
    }
)

#: Protocol numbers.
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class FlowRecord:
    """A single measured flow, as exported by a switch.

    Only the fields the classifier needs are modelled; byte/packet counters
    live in the measurement pipeline.
    """

    src_node: str
    dst_node: str
    protocol: int
    src_port: int
    dst_port: int
    bytes_per_second: float = 0.0

    def __post_init__(self) -> None:
        if self.protocol not in (PROTO_TCP, PROTO_UDP):
            raise TrafficError(
                f"unsupported protocol number {self.protocol!r} (expected TCP=6 or UDP=17)"
            )
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise TrafficError(f"port out of range: {port!r}")
        if self.bytes_per_second < 0.0:
            raise TrafficError(
                f"bytes_per_second must be non-negative, got {self.bytes_per_second!r}"
            )


@dataclass
class ClassifierConfig:
    """Configuration of the heuristic classifier.

    Parameters
    ----------
    operator_overrides:
        Mapping from (node, port) to class name.  Paper §2.2: "the operator
        can specify a non-default delay curve for flows to a certain port or
        from a particular server" — overrides are how that knowledge enters.
    large_flow_threshold_bps:
        Flows whose measured rate exceeds this threshold are classified as
        large transfers regardless of port heuristics.
    default_class:
        Class assigned when no heuristic matches.
    """

    operator_overrides: Mapping[Tuple[str, int], str] = field(default_factory=dict)
    large_flow_threshold_bps: float = 500_000.0
    default_class: str = BULK


class HeuristicClassifier:
    """Classifies flow records into the three traffic classes.

    Order of precedence (most authoritative first):

    1. operator overrides keyed by (destination node, destination port),
    2. operator overrides keyed by (source node, source port),
    3. measured rate above the large-flow threshold -> large transfer,
    4. UDP or a well-known interactive port -> real-time,
    5. a well-known bulk port -> bulk,
    6. the configured default class.
    """

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()

    def classify(self, record: FlowRecord) -> str:
        """Return the class name for one flow record."""
        overrides = self.config.operator_overrides
        by_destination = overrides.get((record.dst_node, record.dst_port))
        if by_destination is not None:
            return by_destination
        by_source = overrides.get((record.src_node, record.src_port))
        if by_source is not None:
            return by_source
        if record.bytes_per_second * 8.0 >= self.config.large_flow_threshold_bps:
            return LARGE_TRANSFER
        if record.protocol == PROTO_UDP:
            return REAL_TIME
        if record.dst_port in REAL_TIME_PORTS or record.src_port in REAL_TIME_PORTS:
            return REAL_TIME
        if record.dst_port in BULK_PORTS or record.src_port in BULK_PORTS:
            return BULK
        return self.config.default_class

    def classify_many(self, records: Iterable["FlowRecord"]) -> Dict[str, int]:
        """Classify an iterable of records and return per-class counts."""
        counts: Dict[str, int] = {}
        for record in records:
            name = self.classify(record)
            counts[name] = counts.get(name, 0) + 1
        return counts
