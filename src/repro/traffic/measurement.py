"""Simulated traffic-matrix measurement.

Paper §2.1: in an SDN network the controller can measure "periodic
per-aggregate bandwidth measurements and approximate flow counts".  Real
counters are noisy and sampled; this module models that imperfection so the
rest of the pipeline (inference, optimization) can be exercised with
realistic rather than oracle inputs.

The measurement error model is multiplicative log-normal noise on demands
and binomial-style jitter on flow counts, both configurable and seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import MeasurementError
from repro.traffic.aggregate import Aggregate
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class MeasurementConfig:
    """Noise parameters of the simulated measurement pipeline.

    Parameters
    ----------
    demand_relative_error:
        Standard deviation of the multiplicative (log-normal) error applied
        to per-flow demand estimates.  0 disables demand noise.
    flow_count_relative_error:
        Standard deviation of the relative error applied to flow counts.
        0 disables count noise.
    drop_probability:
        Probability that an aggregate is missed entirely in one measurement
        epoch (e.g. its counters were not collected in time).
    """

    demand_relative_error: float = 0.05
    flow_count_relative_error: float = 0.10
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_relative_error < 0.0:
            raise MeasurementError(
                f"demand_relative_error must be non-negative, got {self.demand_relative_error!r}"
            )
        if self.flow_count_relative_error < 0.0:
            raise MeasurementError(
                "flow_count_relative_error must be non-negative, got "
                f"{self.flow_count_relative_error!r}"
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise MeasurementError(
                f"drop_probability must be in [0, 1), got {self.drop_probability!r}"
            )


class TrafficMatrixMeasurer:
    """Produces noisy measured copies of a ground-truth traffic matrix."""

    def __init__(
        self,
        config: Optional[MeasurementConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or MeasurementConfig()
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def measure_aggregate(self, aggregate: Aggregate) -> Optional[Aggregate]:
        """Return a noisy copy of one aggregate, or None when it was dropped.

        Both noise channels are *mean-preserving*: over many measurement
        epochs the expected measured demand equals the true demand — an
        aggregate whose count measures zero is dropped for the epoch and
        contributes nothing, which is what keeps even 1-flow aggregates
        unbiased — so anything optimizing against measured matrices sees an
        unbiased view of the traffic.  (The seed code drew demand noise as
        ``exp(normal(0, σ))``, whose mean is ``exp(σ²/2) > 1``, and
        clamped/floored flow counts upward — every measured matrix was
        systematically inflated.)
        """
        config = self.config
        if config.drop_probability > 0.0 and self._rng.random() < config.drop_probability:
            return None

        measured = aggregate
        if config.flow_count_relative_error > 0.0:
            sigma = config.flow_count_relative_error
            # Clamp the relative noise to a band *symmetric* around 1 (the
            # old one-sided max(noise, 0.1) clamp truncated only the lower
            # tail, pushing the mean up), then round stochastically: the
            # expected count equals the scaled value exactly, which
            # round-then-floor cannot achieve for small counts.
            low = max(1.0 - 3.0 * sigma, 0.0)
            noise = float(
                np.clip(self._rng.normal(1.0, sigma), low, 2.0 - low)
            )
            scaled = aggregate.num_flows * noise
            base = int(np.floor(scaled))
            measured_flows = base + (1 if self._rng.random() < scaled - base else 0)
            if measured_flows == 0:
                # A count measured at zero means the collector saw no flows
                # this epoch: the aggregate produces no record, exactly like
                # a drop.  Flooring it to 1 instead would re-introduce the
                # upward bias for 1-flow aggregates.
                return None
            measured = measured.with_num_flows(measured_flows)
        if config.demand_relative_error > 0.0:
            sigma = config.demand_relative_error
            # Log-normal with μ = -σ²/2 has mean exactly 1.
            noise = float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))
            demand = max(aggregate.per_flow_demand_bps * noise, 1.0)
            measured = measured.with_utility(measured.utility.with_demand(demand))
        return measured

    def measure(self, matrix: TrafficMatrix, name: Optional[str] = None) -> TrafficMatrix:
        """Return a measured (noisy) copy of *matrix*.

        Dropped aggregates are simply absent from the result, mirroring a
        collection epoch in which some counters did not arrive.
        """
        measured = TrafficMatrix(name=name or f"{matrix.name}-measured")
        for aggregate in matrix:
            noisy = self.measure_aggregate(aggregate)
            if noisy is not None:
                measured.add(noisy)
        if len(measured) == 0 and len(matrix) > 0:
            raise MeasurementError(
                "measurement dropped every aggregate; lower drop_probability"
            )
        return measured


def measure_traffic_matrix(
    matrix: TrafficMatrix,
    demand_relative_error: float = 0.05,
    flow_count_relative_error: float = 0.10,
    drop_probability: float = 0.0,
    seed: Optional[int] = None,
) -> TrafficMatrix:
    """One-shot convenience wrapper around :class:`TrafficMatrixMeasurer`."""
    measurer = TrafficMatrixMeasurer(
        MeasurementConfig(
            demand_relative_error=demand_relative_error,
            flow_count_relative_error=flow_count_relative_error,
            drop_probability=drop_probability,
        ),
        seed=seed,
    )
    return measurer.measure(matrix)
