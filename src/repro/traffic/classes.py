"""Traffic classes.

A traffic class ties a name (``"real-time"``, ``"bulk"``, ``"large-transfer"``)
to the utility function its flows use and to bookkeeping the evaluation needs
(whether the class counts as "large flows" for the Figure 3–5 series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import TrafficError
from repro.utility.functions import UtilityFunction
from repro.utility.presets import (
    bulk_transfer_utility,
    large_transfer_utility,
    real_time_utility,
)

#: Class name used for interactive traffic.
REAL_TIME = "real-time"

#: Class name used for ordinary bulk transfers.
BULK = "bulk"

#: Class name used for the paper's 2 % large file-transfer aggregates.
LARGE_TRANSFER = "large-transfer"


@dataclass(frozen=True)
class TrafficClass:
    """A named traffic class with its default utility function.

    Parameters
    ----------
    name:
        Class name; used as the key in priority weights and reports.
    utility:
        Default utility function for flows of this class.  Individual
        aggregates may override the bandwidth peak (e.g. a measured demand).
    is_large:
        True for classes whose aggregates count as "large flows" in the
        evaluation's per-class series.
    """

    name: str
    utility: UtilityFunction
    is_large: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TrafficError("traffic class name must be non-empty")


def default_traffic_classes(
    relax_delay_factor: Optional[float] = None,
    delay_cutoff_scale: float = 1.0,
) -> Dict[str, TrafficClass]:
    """The three classes used throughout the paper's evaluation.

    ``relax_delay_factor`` relaxes the delay component of the two *small*
    classes (real-time and bulk), which is exactly the knob the Figure 6
    experiment turns ("small flows using double the delay parameter").

    ``delay_cutoff_scale`` rescales the delay components of *every* class
    before the relax factor is applied.  The paper's cut-offs (100 ms for
    real-time) are sized for an intercontinental core; reduced-scale
    topologies whose paths never approach those delays use a smaller scale so
    the delay part of the utility still constrains path choice (see
    EXPERIMENTS.md, experiment E6).
    """
    if delay_cutoff_scale <= 0.0:
        raise TrafficError(
            f"delay_cutoff_scale must be positive, got {delay_cutoff_scale!r}"
        )
    real_time = real_time_utility()
    bulk = bulk_transfer_utility()
    large = large_transfer_utility()
    if delay_cutoff_scale != 1.0:
        real_time = real_time.with_relaxed_delay(delay_cutoff_scale)
        bulk = bulk.with_relaxed_delay(delay_cutoff_scale)
        large = large.with_relaxed_delay(delay_cutoff_scale)
    if relax_delay_factor is not None:
        real_time = real_time.with_relaxed_delay(relax_delay_factor)
        bulk = bulk.with_relaxed_delay(relax_delay_factor)
    return {
        REAL_TIME: TrafficClass(REAL_TIME, real_time, is_large=False),
        BULK: TrafficClass(BULK, bulk, is_large=False),
        LARGE_TRANSFER: TrafficClass(LARGE_TRANSFER, large, is_large=True),
    }
