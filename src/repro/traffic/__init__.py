"""Traffic matrices, aggregates, generators and measurement."""

from repro.traffic.aggregate import Aggregate, AggregateKey
from repro.traffic.classes import (
    BULK,
    LARGE_TRANSFER,
    REAL_TIME,
    TrafficClass,
    default_traffic_classes,
)
from repro.traffic.classifier import (
    BULK_PORTS,
    REAL_TIME_PORTS,
    ClassifierConfig,
    FlowRecord,
    HeuristicClassifier,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.traffic.generators import (
    PaperTrafficConfig,
    gravity_traffic_matrix,
    hotspot_traffic_matrix,
    paper_traffic_matrix,
    uniform_traffic_matrix,
)
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.measurement import (
    MeasurementConfig,
    TrafficMatrixMeasurer,
    measure_traffic_matrix,
)

__all__ = [
    "Aggregate",
    "AggregateKey",
    "BULK",
    "BULK_PORTS",
    "ClassifierConfig",
    "FlowRecord",
    "HeuristicClassifier",
    "LARGE_TRANSFER",
    "MeasurementConfig",
    "PROTO_TCP",
    "PROTO_UDP",
    "PaperTrafficConfig",
    "REAL_TIME",
    "REAL_TIME_PORTS",
    "TrafficClass",
    "TrafficMatrix",
    "TrafficMatrixMeasurer",
    "default_traffic_classes",
    "gravity_traffic_matrix",
    "hotspot_traffic_matrix",
    "measure_traffic_matrix",
    "paper_traffic_matrix",
    "uniform_traffic_matrix",
]
