"""The traffic matrix: a collection of aggregates.

Paper §2.1: FUBAR periodically measures "per-aggregate bandwidth ... and
approximate flow counts for each aggregate".  A :class:`TrafficMatrix` is the
container those measurements land in and the input the optimizer consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import TrafficError
from repro.topology.graph import Network
from repro.traffic.aggregate import Aggregate, AggregateKey
from repro.utility.components import BandwidthComponent, DelayComponent
from repro.utility.functions import UtilityFunction

#: Schema version written into serialized traffic matrices.
SCHEMA_VERSION = 1


class TrafficMatrix:
    """An ordered collection of :class:`Aggregate` objects keyed by (src, dst, class)."""

    def __init__(self, aggregates: Optional[Iterable[Aggregate]] = None, name: str = "traffic") -> None:
        self.name = name
        #: Aggregates removed by the last :meth:`scaled_flows` transform
        #: because their count rounded to zero (0 for matrices built any
        #: other way).
        self.dropped_aggregates: int = 0
        self._aggregates: Dict[AggregateKey, Aggregate] = {}
        for aggregate in aggregates or ():
            self.add(aggregate)

    # ----------------------------------------------------------------- build

    def add(self, aggregate: Aggregate) -> None:
        """Add an aggregate; duplicates (same key) are an error."""
        if aggregate.key in self._aggregates:
            raise TrafficError(f"duplicate aggregate: {aggregate.key!r}")
        self._aggregates[aggregate.key] = aggregate

    def replace(self, aggregate: Aggregate) -> None:
        """Add or overwrite an aggregate with the same key."""
        self._aggregates[aggregate.key] = aggregate

    def remove(self, key: AggregateKey) -> None:
        """Remove the aggregate with *key*, raising if it is absent."""
        if key not in self._aggregates:
            raise TrafficError(f"no such aggregate: {key!r}")
        del self._aggregates[key]

    # ---------------------------------------------------------------- access

    @property
    def aggregates(self) -> Tuple[Aggregate, ...]:
        """All aggregates, in insertion order."""
        return tuple(self._aggregates.values())

    @property
    def keys(self) -> Tuple[AggregateKey, ...]:
        """All aggregate keys, in insertion order."""
        return tuple(self._aggregates.keys())

    def get(self, key: AggregateKey) -> Aggregate:
        """Return the aggregate with *key*, raising :class:`TrafficError` otherwise."""
        try:
            return self._aggregates[key]
        except KeyError:
            raise TrafficError(f"no such aggregate: {key!r}") from None

    def __contains__(self, key: AggregateKey) -> bool:
        return key in self._aggregates

    def __iter__(self) -> Iterator[Aggregate]:
        return iter(self._aggregates.values())

    def __len__(self) -> int:
        return len(self._aggregates)

    def __repr__(self) -> str:
        return f"TrafficMatrix(name={self.name!r}, aggregates={len(self)})"

    # --------------------------------------------------------------- queries

    @property
    def num_aggregates(self) -> int:
        """Number of aggregates in the matrix."""
        return len(self._aggregates)

    @property
    def total_flows(self) -> int:
        """Total number of flows across all aggregates."""
        return sum(a.num_flows for a in self._aggregates.values())

    @property
    def total_demand_bps(self) -> float:
        """Total demand across all aggregates in bits per second."""
        return sum(a.total_demand_bps for a in self._aggregates.values())

    def traffic_classes(self) -> Tuple[str, ...]:
        """Sorted names of the traffic classes present."""
        return tuple(sorted({a.traffic_class for a in self._aggregates.values()}))

    def aggregates_of_class(self, traffic_class: str) -> Tuple[Aggregate, ...]:
        """All aggregates belonging to *traffic_class*."""
        return tuple(
            a for a in self._aggregates.values() if a.traffic_class == traffic_class
        )

    def aggregates_from(self, source: str) -> Tuple[Aggregate, ...]:
        """All aggregates entering the network at *source*."""
        return tuple(a for a in self._aggregates.values() if a.source == source)

    def aggregates_to(self, destination: str) -> Tuple[Aggregate, ...]:
        """All aggregates leaving the network at *destination*."""
        return tuple(a for a in self._aggregates.values() if a.destination == destination)

    def endpoints(self) -> Tuple[str, ...]:
        """Sorted names of every node that appears as a source or destination."""
        nodes = set()
        for aggregate in self._aggregates.values():
            nodes.add(aggregate.source)
            nodes.add(aggregate.destination)
        return tuple(sorted(nodes))

    # ----------------------------------------------------------- validation

    def validate_against(self, network: Network) -> List[str]:
        """Return problems that would prevent routing this matrix on *network*."""
        problems: List[str] = []
        for aggregate in self._aggregates.values():
            if not network.has_node(aggregate.source):
                problems.append(f"source {aggregate.source!r} not in network")
            if not network.has_node(aggregate.destination):
                problems.append(f"destination {aggregate.destination!r} not in network")
        return problems

    def require_routable_on(self, network: Network) -> None:
        """Raise :class:`TrafficError` when endpoints are missing from *network*."""
        problems = self.validate_against(network)
        if problems:
            raise TrafficError(
                f"traffic matrix {self.name!r} does not fit network "
                f"{network.name!r}: " + "; ".join(sorted(set(problems)))
            )

    # ------------------------------------------------------------ transforms

    def scaled_flows(
        self,
        factor: float,
        name: Optional[str] = None,
        drop_empty: bool = True,
    ) -> "TrafficMatrix":
        """Return a copy with every flow count multiplied by *factor*.

        Counts round to the nearest integer; ``factor=1.0`` is an exact
        identity.  With ``drop_empty`` (the default) aggregates whose count
        rounds to zero are *dropped* — and counted on the result's
        ``dropped_aggregates`` attribute — so down-scaling a matrix truly
        shrinks its demand.  (The seed code pinned every aggregate at >= 1
        flow, so scaling a matrix with many 1-flow aggregates silently left
        total demand nearly unchanged — misleading for provisioning sweeps
        that scale load.)  Pass ``drop_empty=False`` to keep the >= 1 floor
        when every endpoint pair must stay represented.
        """
        if factor <= 0.0:
            raise TrafficError(f"flow scale factor must be positive, got {factor!r}")
        scaled = TrafficMatrix(name=name or f"{self.name}-x{factor:g}")
        dropped = 0
        for aggregate in self._aggregates.values():
            num_flows = int(round(aggregate.num_flows * factor))
            if num_flows < 1:
                if drop_empty:
                    dropped += 1
                    continue
                num_flows = 1
            scaled.add(aggregate.with_num_flows(num_flows))
        scaled.dropped_aggregates = dropped
        return scaled

    def filtered(
        self, predicate: Callable[[Aggregate], bool], name: Optional[str] = None
    ) -> "TrafficMatrix":
        """Return a copy containing only aggregates for which *predicate* is true."""
        selected = TrafficMatrix(name=name or f"{self.name}-filtered")
        for aggregate in self._aggregates.values():
            if predicate(aggregate):
                selected.add(aggregate)
        return selected

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Serialize to a plain dictionary (JSON-compatible)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "aggregates": [
                {
                    "source": a.source,
                    "destination": a.destination,
                    "traffic_class": a.traffic_class,
                    "num_flows": a.num_flows,
                    "utility": {
                        "name": a.utility.name,
                        "peak_bandwidth_bps": a.utility.bandwidth.peak_bandwidth_bps,
                        "utility_at_zero": a.utility.bandwidth.utility_at_zero,
                        "delay_cutoff_s": a.utility.delay.cutoff_s,
                        "delay_tolerance_s": a.utility.delay.tolerance_s,
                    },
                    "metadata": dict(a.metadata),
                }
                for a in self._aggregates.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficMatrix":
        """Deserialize from a dictionary produced by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise TrafficError(f"expected a dict, got {type(data).__name__}")
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise TrafficError(f"unsupported traffic matrix schema version: {version!r}")
        matrix = cls(name=str(data.get("name", "traffic")))
        for entry in data.get("aggregates", []):
            utility_data = entry["utility"]
            utility = UtilityFunction(
                BandwidthComponent(
                    float(utility_data["peak_bandwidth_bps"]),
                    utility_at_zero=float(utility_data.get("utility_at_zero", 0.0)),
                ),
                DelayComponent(
                    float(utility_data["delay_cutoff_s"]),
                    tolerance_s=float(utility_data.get("delay_tolerance_s", 0.0)),
                ),
                name=str(utility_data.get("name", "utility")),
            )
            matrix.add(
                Aggregate(
                    source=str(entry["source"]),
                    destination=str(entry["destination"]),
                    traffic_class=str(entry["traffic_class"]),
                    num_flows=int(entry["num_flows"]),
                    utility=utility,
                    metadata=entry.get("metadata") or {},
                )
            )
        return matrix

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TrafficMatrix":
        """Deserialize from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrafficError(f"invalid traffic matrix JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the matrix to a JSON file and return the path."""
        target = Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrafficMatrix":
        """Read a matrix from a JSON file."""
        source = Path(path)
        if not source.exists():
            raise TrafficError(f"traffic matrix file does not exist: {source}")
        return cls.from_json(source.read_text(encoding="utf-8"))
