"""Traffic aggregates.

Paper §2.4: an *aggregate* is the set of flows that "share a source,
destination and traffic class".  FUBAR splits an aggregate into *bundles* of
flows routed over different paths; the aggregate itself is the unit the
traffic matrix is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.exceptions import TrafficError
from repro.utility.functions import UtilityFunction

#: An aggregate is identified by (source, destination, traffic class name).
AggregateKey = Tuple[str, str, str]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate of flows sharing entry point, exit point and traffic class.

    Parameters
    ----------
    source, destination:
        POP names; must differ.
    traffic_class:
        Class name (e.g. ``"real-time"``).
    num_flows:
        Approximate number of flows in the aggregate (paper §2.1: FUBAR needs
        "approximate flow counts for each aggregate").  Must be positive.
    utility:
        The utility function shared by the aggregate's flows.  The bandwidth
        peak of this function is the per-flow demand used by the traffic
        model.
    metadata:
        Free-form annotations (e.g. the measurement epoch it came from).
    """

    source: str
    destination: str
    traffic_class: str
    num_flows: int
    utility: UtilityFunction
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise TrafficError(
                f"aggregate source and destination must differ, got {self.source!r}"
            )
        if not self.traffic_class:
            raise TrafficError("aggregate traffic class must be non-empty")
        if int(self.num_flows) <= 0:
            raise TrafficError(
                f"aggregate must contain a positive number of flows, got {self.num_flows!r}"
            )
        if not isinstance(self.utility, UtilityFunction):
            raise TrafficError(f"utility must be a UtilityFunction, got {self.utility!r}")

    @property
    def key(self) -> AggregateKey:
        """The (source, destination, class) identifier of this aggregate."""
        return (self.source, self.destination, self.traffic_class)

    @property
    def per_flow_demand_bps(self) -> float:
        """Demand of one flow: the peak of the bandwidth utility component."""
        return self.utility.demand_bps

    @property
    def total_demand_bps(self) -> float:
        """Demand of the whole aggregate (flows x per-flow demand)."""
        return self.num_flows * self.per_flow_demand_bps

    def with_num_flows(self, num_flows: int) -> "Aggregate":
        """Return a copy with a different flow count (used by measurement noise)."""
        return Aggregate(
            source=self.source,
            destination=self.destination,
            traffic_class=self.traffic_class,
            num_flows=num_flows,
            utility=self.utility,
            metadata=dict(self.metadata),
        )

    def with_utility(self, utility: UtilityFunction) -> "Aggregate":
        """Return a copy with a different utility function (e.g. refined demand)."""
        return Aggregate(
            source=self.source,
            destination=self.destination,
            traffic_class=self.traffic_class,
            num_flows=self.num_flows,
            utility=utility,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:
        return (
            f"Aggregate({self.source!r}->{self.destination!r}, "
            f"class={self.traffic_class!r}, flows={self.num_flows}, "
            f"per_flow_demand={self.per_flow_demand_bps:.0f} bps)"
        )
