"""Traffic matrix generators.

The paper's evaluation (§3) builds its traffic matrix synthetically:

    "For each of all 961 aggregates we randomly pick either a real-time
    utility function or a bulk-transfer one.  To reflect real-world traffic
    we also add a 2% probability of there being a large aggregate using a
    file transfer utility function with a higher max bandwidth (1 or 2 Mbps)."

:func:`paper_traffic_matrix` reproduces that recipe on any topology (961 is
simply 31x31 on the Hurricane Electric core; source==destination pairs carry
no traffic, so by default we generate the 31x30 ordered pairs).  A
gravity-model generator and a hot-spot generator are also provided for the
examples and for stress tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrafficError
from repro.topology.graph import Network
from repro.traffic.aggregate import Aggregate
from repro.traffic.classes import BULK, LARGE_TRANSFER, REAL_TIME, TrafficClass, default_traffic_classes
from repro.traffic.matrix import TrafficMatrix
from repro.units import mbps
from repro.utility.presets import LARGE_TRANSFER_PEAKS_BPS


@dataclass(frozen=True)
class PaperTrafficConfig:
    """Parameters of the paper's synthetic traffic matrix.

    The paper specifies the class mix and the large-aggregate rule but not
    the per-aggregate flow counts; ``min_flows``/``max_flows`` control those
    (flow counts are drawn uniformly).  The defaults are chosen so that the
    provisioned Hurricane Electric core (100 Mbps links) sees the ~0.4–0.7
    total link utilization visible in Figure 3 — see EXPERIMENTS.md.

    Parameters
    ----------
    real_time_probability:
        Probability that a small aggregate is real-time rather than bulk.
    large_probability:
        Probability that an aggregate is a large file-transfer aggregate
        (paper: 2 %).
    large_peaks_bps:
        The per-flow demands large aggregates choose from (paper: 1 or 2 Mbps).
    min_flows, max_flows:
        Uniform range of flow counts for small aggregates.
    min_large_flows, max_large_flows:
        Uniform range of flow counts for large aggregates (fewer, bigger flows).
    relax_delay_factor:
        When set, relaxes the delay component of the small classes — the
        Figure 6 configuration.
    delay_cutoff_scale:
        Rescales every class's delay component before the relax factor is
        applied (used to make delay binding on reduced-scale topologies).
    include_self_pairs:
        The paper's count of 961 aggregates equals 31^2, i.e. it includes the
        (src == dst) pairs, which carry no routable traffic.  They are
        excluded by default; the flag exists only to document the discrepancy.
    """

    real_time_probability: float = 0.5
    large_probability: float = 0.02
    large_peaks_bps: Tuple[float, ...] = LARGE_TRANSFER_PEAKS_BPS
    min_flows: int = 5
    max_flows: int = 25
    min_large_flows: int = 2
    max_large_flows: int = 6
    relax_delay_factor: Optional[float] = None
    delay_cutoff_scale: float = 1.0
    include_self_pairs: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.real_time_probability <= 1.0:
            raise TrafficError(
                f"real_time_probability must be in [0, 1], got {self.real_time_probability!r}"
            )
        if not 0.0 <= self.large_probability <= 1.0:
            raise TrafficError(
                f"large_probability must be in [0, 1], got {self.large_probability!r}"
            )
        if self.min_flows < 1 or self.max_flows < self.min_flows:
            raise TrafficError(
                f"invalid flow count range [{self.min_flows}, {self.max_flows}]"
            )
        if self.min_large_flows < 1 or self.max_large_flows < self.min_large_flows:
            raise TrafficError(
                f"invalid large flow count range "
                f"[{self.min_large_flows}, {self.max_large_flows}]"
            )
        if not self.large_peaks_bps:
            raise TrafficError("large_peaks_bps must not be empty")
        if self.delay_cutoff_scale <= 0.0:
            raise TrafficError(
                f"delay_cutoff_scale must be positive, got {self.delay_cutoff_scale!r}"
            )


def paper_traffic_matrix(
    network: Network,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    config: Optional[PaperTrafficConfig] = None,
    name: Optional[str] = None,
) -> TrafficMatrix:
    """Generate the paper's synthetic all-pairs traffic matrix on *network*.

    Every ordered pair of distinct nodes gets exactly one aggregate.  Each
    aggregate is large with probability ``config.large_probability``;
    otherwise it is real-time or bulk with the configured mix.  Flow counts
    are drawn uniformly from the per-kind ranges.
    """
    if network.num_nodes < 2:
        raise TrafficError("need at least two nodes to generate traffic")
    generator = rng if rng is not None else np.random.default_rng(seed)
    config = config or PaperTrafficConfig()
    classes = default_traffic_classes(
        relax_delay_factor=config.relax_delay_factor,
        delay_cutoff_scale=config.delay_cutoff_scale,
    )

    matrix = TrafficMatrix(name=name or f"paper-tm-{network.name}")
    for source in network.node_names:
        for destination in network.node_names:
            if source == destination and not config.include_self_pairs:
                continue
            if source == destination:
                # Self-pairs exist only to reproduce the paper's aggregate
                # count; they cannot be routed, so they are skipped anyway.
                continue
            is_large = generator.random() < config.large_probability
            if is_large:
                peak = float(generator.choice(np.asarray(config.large_peaks_bps)))
                utility = classes[LARGE_TRANSFER].utility.with_demand(peak)
                num_flows = int(
                    generator.integers(config.min_large_flows, config.max_large_flows + 1)
                )
                class_name = LARGE_TRANSFER
            else:
                if generator.random() < config.real_time_probability:
                    class_name = REAL_TIME
                else:
                    class_name = BULK
                utility = classes[class_name].utility
                num_flows = int(generator.integers(config.min_flows, config.max_flows + 1))
            matrix.add(
                Aggregate(
                    source=source,
                    destination=destination,
                    traffic_class=class_name,
                    num_flows=num_flows,
                    utility=utility,
                )
            )
    return matrix


def gravity_traffic_matrix(
    network: Network,
    total_demand_bps: float,
    traffic_class: Optional[TrafficClass] = None,
    node_weights: Optional[Dict[str, float]] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> TrafficMatrix:
    """Generate a gravity-model traffic matrix.

    Demand between two nodes is proportional to the product of their weights
    (uniform random weights by default), scaled so the whole matrix sums to
    ``total_demand_bps``.  Each pair becomes one aggregate whose flow count
    is the demand divided by the class's per-flow peak.

    This generator is not used by the paper but is the standard workload for
    traffic-engineering studies, so the examples use it to show FUBAR on
    non-uniform demand.
    """
    if network.num_nodes < 2:
        raise TrafficError("need at least two nodes to generate traffic")
    if total_demand_bps <= 0.0:
        raise TrafficError(f"total demand must be positive, got {total_demand_bps!r}")
    generator = rng if rng is not None else np.random.default_rng(seed)
    if traffic_class is None:
        traffic_class = default_traffic_classes()[BULK]

    names = list(network.node_names)
    if node_weights is None:
        weights = {node: float(generator.uniform(0.5, 1.5)) for node in names}
    else:
        missing = [node for node in names if node not in node_weights]
        if missing:
            raise TrafficError(f"node_weights is missing nodes: {missing}")
        weights = {node: float(node_weights[node]) for node in names}
        if any(w <= 0.0 for w in weights.values()):
            raise TrafficError("node weights must be positive")

    pair_weights = {}
    for source in names:
        for destination in names:
            if source == destination:
                continue
            pair_weights[(source, destination)] = weights[source] * weights[destination]
    weight_sum = sum(pair_weights.values())

    per_flow = traffic_class.utility.demand_bps
    matrix = TrafficMatrix(name=name or f"gravity-tm-{network.name}")
    for (source, destination), weight in pair_weights.items():
        demand = total_demand_bps * weight / weight_sum
        num_flows = max(1, int(round(demand / per_flow)))
        matrix.add(
            Aggregate(
                source=source,
                destination=destination,
                traffic_class=traffic_class.name,
                num_flows=num_flows,
                utility=traffic_class.utility,
            )
        )
    return matrix


def hotspot_traffic_matrix(
    network: Network,
    hotspot: str,
    num_flows_per_aggregate: int = 20,
    traffic_class: Optional[TrafficClass] = None,
    name: Optional[str] = None,
) -> TrafficMatrix:
    """Generate a matrix where every other node sends one aggregate to *hotspot*.

    A deliberately unbalanced workload that concentrates load around a single
    destination; used in examples and stress tests to exercise FUBAR's
    hot-spot avoidance.
    """
    if not network.has_node(hotspot):
        raise TrafficError(f"hotspot node {hotspot!r} is not in the network")
    if num_flows_per_aggregate < 1:
        raise TrafficError(
            f"num_flows_per_aggregate must be positive, got {num_flows_per_aggregate!r}"
        )
    if traffic_class is None:
        traffic_class = default_traffic_classes()[BULK]
    matrix = TrafficMatrix(name=name or f"hotspot-tm-{hotspot}")
    for source in network.node_names:
        if source == hotspot:
            continue
        matrix.add(
            Aggregate(
                source=source,
                destination=hotspot,
                traffic_class=traffic_class.name,
                num_flows=num_flows_per_aggregate,
                utility=traffic_class.utility,
            )
        )
    return matrix


def uniform_traffic_matrix(
    network: Network,
    num_flows_per_aggregate: int = 10,
    traffic_class: Optional[TrafficClass] = None,
    name: Optional[str] = None,
) -> TrafficMatrix:
    """Generate a deterministic all-pairs matrix with identical aggregates.

    Useful in tests where randomness would obscure the property being
    checked.
    """
    if num_flows_per_aggregate < 1:
        raise TrafficError(
            f"num_flows_per_aggregate must be positive, got {num_flows_per_aggregate!r}"
        )
    if traffic_class is None:
        traffic_class = default_traffic_classes()[BULK]
    matrix = TrafficMatrix(name=name or f"uniform-tm-{network.name}")
    for source in network.node_names:
        for destination in network.node_names:
            if source == destination:
                continue
            matrix.add(
                Aggregate(
                    source=source,
                    destination=destination,
                    traffic_class=traffic_class.name,
                    num_flows=num_flows_per_aggregate,
                    utility=traffic_class.utility,
                )
            )
    return matrix
