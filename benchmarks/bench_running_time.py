"""Experiment E8 — §3 "Running time", plus the incremental-engine benchmark.

The paper reports that the provisioned case converges in under a minute and
the underprovisioned case in about five minutes (single-threaded Java,
1.3 GHz Core i5).  Absolute numbers are not comparable with a pure-Python
reimplementation on different hardware and (by default) a reduced topology;
the property that carries over is the *relationship*: the underprovisioned
case needs more steps/time because the optimizer keeps spreading traffic over
more lightly-congested links before giving up.

This module additionally measures the compiled/incremental traffic-model
engine (ISSUE 2) against the pre-compiled-engine baseline — the
:class:`~repro.trafficmodel.waterfill.ReferenceTrafficModel` scoring every
candidate move with a full rebuild — on the same scenario, and can write the
result (including the optimizer trajectory) to ``BENCH_running_time.json``:

    PYTHONPATH=src python -m benchmarks.bench_running_time \
        --num-pops 31 --max-steps 6 --output BENCH_running_time.json

The pytest entry points run the same comparison at reduced scale and fail on
model-equivalence drift, which is what the CI benchmark smoke job checks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.core.optimizer import FubarOptimizer
from repro.experiments.figures import run_running_time
from repro.experiments.scenarios import provisioned_scenario
from repro.metrics.reporting import format_table
from repro.trafficmodel.waterfill import ReferenceTrafficModel

#: Default location of the running-time benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_running_time.json"

#: Schema version of BENCH_running_time.json.
BENCH_SCHEMA = 1

#: Relative tolerance for the model-equivalence drift gate: both engines must
#: land on the same final utility (they evaluate the same model).
DRIFT_RTOL = 1e-6


def _run_engine(scenario, use_incremental: bool, max_steps: Optional[int]) -> Dict:
    """Run FUBAR on *scenario* with one engine and return its measurements."""
    config = replace(
        scenario.fubar_config,
        max_steps=max_steps,
        use_incremental_model=use_incremental,
    )
    traffic_model = (
        None if use_incremental else ReferenceTrafficModel(scenario.network)
    )
    optimizer = FubarOptimizer(
        scenario.network,
        scenario.traffic_matrix,
        config=config,
        traffic_model=traffic_model,
    )
    started = time.perf_counter()
    result = optimizer.run()
    wall = time.perf_counter() - started
    evaluations = result.model_evaluations
    return {
        "engine": "compiled-incremental" if use_incremental else "reference-full",
        "wall_clock_s": wall,
        "steps": result.num_steps,
        "model_evaluations": evaluations,
        "ms_per_evaluation": wall / evaluations * 1e3 if evaluations else None,
        "evaluations_per_s": evaluations / wall if wall > 0 else None,
        "final_utility": result.network_utility,
        "termination": result.termination_reason,
        "trajectory": [point.as_dict() for point in result.trace],
    }


def measure_incremental_speedup(
    seed: int = BENCH_SEED,
    max_steps: Optional[int] = 6,
    **scenario_kwargs,
) -> Dict:
    """Compare the compiled engine against the reference baseline.

    Runs the provisioned scenario twice with an identical step budget — once
    scoring candidates through the full reference rebuild, once through the
    incremental delta path — and reports per-evaluation timings, the speedup,
    and a single-evaluation microbenchmark.
    """
    scenario = provisioned_scenario(seed=seed, **scenario_kwargs)
    baseline = _run_engine(scenario, use_incremental=False, max_steps=max_steps)
    compiled = _run_engine(scenario, use_incremental=True, max_steps=max_steps)

    # Single-evaluation microbenchmark (shortest-path allocation).
    from repro.core.state import AllocationState
    from repro.trafficmodel.compiled import CompiledTrafficModel
    from repro.trafficmodel.waterfill import reference_evaluate

    state = AllocationState.initial(scenario.network, scenario.traffic_matrix)
    bundles = state.bundles()

    started = time.perf_counter()
    reference_result = reference_evaluate(scenario.network, bundles)
    reference_eval_ms = (time.perf_counter() - started) * 1e3

    engine = CompiledTrafficModel(scenario.network)
    engine.evaluate(bundles)  # warm the row cache
    started = time.perf_counter()
    compiled_result = engine.evaluate(bundles)
    compiled_eval_ms = (time.perf_counter() - started) * 1e3

    compiled_base = engine.compile(bundles)
    sample = bundles[0]
    patch = {
        (sample.aggregate_key, sample.path): sample.with_num_flows(
            max(1, sample.num_flows // 2)
        )
    }
    started = time.perf_counter()
    patched = engine.compile_patched(compiled_base, patch)
    solution = engine.solve(patched)
    engine.weighted_utility(patched, solution.rates)
    patched_eval_ms = (time.perf_counter() - started) * 1e3

    return {
        "schema": BENCH_SCHEMA,
        "scenario": dict(scenario.summary()),
        "seed": seed,
        "max_steps": max_steps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "engines": {"reference": baseline, "compiled": compiled},
        "speedup": {
            # evaluations/s speedup is the same ratio by construction, so
            # only the ms-per-evaluation form is recorded.
            "ms_per_evaluation": (
                baseline["ms_per_evaluation"] / compiled["ms_per_evaluation"]
                if baseline["ms_per_evaluation"] and compiled["ms_per_evaluation"]
                else None
            ),
            "wall_clock": (
                baseline["wall_clock_s"] / compiled["wall_clock_s"]
                if compiled["wall_clock_s"] > 0
                else None
            ),
        },
        "microbench": {
            "reference_eval_ms": reference_eval_ms,
            "compiled_full_eval_ms": compiled_eval_ms,
            "compiled_patched_eval_ms": patched_eval_ms,
            "full_vs_incremental_speedup": (
                reference_eval_ms / patched_eval_ms if patched_eval_ms > 0 else None
            ),
        },
        "drift": {
            "final_utility_reference": baseline["final_utility"],
            "final_utility_compiled": compiled["final_utility"],
            "single_eval_utility_reference": reference_result.network_utility(),
            "single_eval_utility_compiled": compiled_result.network_utility(),
        },
    }


def _assert_no_drift(record: Dict) -> None:
    drift = record["drift"]
    assert abs(
        drift["single_eval_utility_reference"] - drift["single_eval_utility_compiled"]
    ) <= DRIFT_RTOL * max(abs(drift["single_eval_utility_reference"]), 1e-12), (
        "compiled engine drifted from the reference model on a single evaluation"
    )
    assert abs(
        drift["final_utility_reference"] - drift["final_utility_compiled"]
    ) <= 1e-3 * max(abs(drift["final_utility_reference"]), 1e-12), (
        "engines converged to different utilities under the same step budget"
    )


def _print_speedup(record: Dict) -> None:
    print_header("Incremental traffic-model engine vs reference baseline")
    rows = []
    for name in ("reference", "compiled"):
        engine = record["engines"][name]
        rows.append(
            (
                name,
                f"{engine['wall_clock_s']:.2f}",
                engine["steps"],
                engine["model_evaluations"],
                f"{engine['ms_per_evaluation']:.2f}" if engine["ms_per_evaluation"] else "-",
                f"{engine['evaluations_per_s']:.0f}" if engine["evaluations_per_s"] else "-",
                f"{engine['final_utility']:.4f}",
            )
        )
    print(
        format_table(
            ("engine", "wall_s", "steps", "evals", "ms/eval", "evals/s", "utility"),
            rows,
        )
    )
    speedup = record["speedup"]
    micro = record["microbench"]
    print(
        f"\nper-evaluation speedup: {speedup['ms_per_evaluation']:.2f}x   "
        f"wall-clock speedup: {speedup['wall_clock']:.2f}x"
    )
    print(
        f"microbench: reference {micro['reference_eval_ms']:.2f} ms, "
        f"compiled full {micro['compiled_full_eval_ms']:.2f} ms, "
        f"compiled patched {micro['compiled_patched_eval_ms']:.2f} ms "
        f"({micro['full_vs_incremental_speedup']:.1f}x full-vs-incremental)"
    )


# ------------------------------------------------------------------- pytest


def test_running_time(benchmark):
    result = run_once(benchmark, run_running_time, seed=BENCH_SEED)

    summary = result.summary()
    print_header("Running time: provisioned vs underprovisioned")
    print(
        format_table(
            ("case", "wall_clock_s", "steps", "model_evaluations"),
            [
                (
                    "provisioned",
                    f"{summary['provisioned_wall_clock_s']:.2f}",
                    summary["provisioned_steps"],
                    result.provisioned.plan.result.model_evaluations,
                ),
                (
                    "underprovisioned",
                    f"{summary['underprovisioned_wall_clock_s']:.2f}",
                    summary["underprovisioned_steps"],
                    result.underprovisioned.plan.result.model_evaluations,
                ),
            ],
        )
    )
    print(f"\nunderprovisioned / provisioned wall-clock ratio: {summary['underprovisioned_slower_by']:.2f}x")

    assert summary["provisioned_wall_clock_s"] > 0.0
    assert summary["underprovisioned_steps"] >= 1


def test_incremental_engine_speedup_and_equivalence(benchmark):
    """The CI smoke gate: both engines agree; the compiled one is not slower.

    At the default reduced scale the absolute speedup is modest (smaller
    matrices shrink the reference model's disadvantage), so the hard gate is
    model equivalence; the ≥3x acceptance number is recorded at full scale in
    BENCH_running_time.json.
    """
    record = run_once(benchmark, measure_incremental_speedup, max_steps=4)
    _print_speedup(record)
    _assert_no_drift(record)
    assert record["speedup"]["ms_per_evaluation"] is not None
    assert record["speedup"]["ms_per_evaluation"] > 0.8


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the incremental engine and write BENCH_running_time.json"
    )
    parser.add_argument(
        "--num-pops",
        type=int,
        default=None,
        help="POP count (defaults to the scenario default; 31 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--max-steps",
        type=int,
        default=6,
        help="step budget per engine (bounds the baseline's wall clock)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    kwargs = {}
    if args.num_pops is not None:
        kwargs["num_pops"] = args.num_pops
    record = measure_incremental_speedup(
        seed=args.seed, max_steps=args.max_steps, **kwargs
    )
    _print_speedup(record)
    _assert_no_drift(record)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
