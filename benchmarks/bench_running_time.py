"""Experiment E8 — §3 "Running time".

The paper reports that the provisioned case converges in under a minute and
the underprovisioned case in about five minutes (single-threaded Java,
1.3 GHz Core i5).  Absolute numbers are not comparable with a pure-Python
reimplementation on different hardware and (by default) a reduced topology;
the property that carries over is the *relationship*: the underprovisioned
case needs more steps/time because the optimizer keeps spreading traffic over
more lightly-congested links before giving up.
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.figures import run_running_time
from repro.metrics.reporting import format_table


def test_running_time(benchmark):
    result = run_once(benchmark, run_running_time, seed=BENCH_SEED)

    summary = result.summary()
    print_header("Running time: provisioned vs underprovisioned")
    print(
        format_table(
            ("case", "wall_clock_s", "steps", "model_evaluations"),
            [
                (
                    "provisioned",
                    f"{summary['provisioned_wall_clock_s']:.2f}",
                    summary["provisioned_steps"],
                    result.provisioned.plan.result.model_evaluations,
                ),
                (
                    "underprovisioned",
                    f"{summary['underprovisioned_wall_clock_s']:.2f}",
                    summary["underprovisioned_steps"],
                    result.underprovisioned.plan.result.model_evaluations,
                ),
            ],
        )
    )
    print(f"\nunderprovisioned / provisioned wall-clock ratio: {summary['underprovisioned_slower_by']:.2f}x")

    assert summary["provisioned_wall_clock_s"] > 0.0
    assert summary["underprovisioned_steps"] >= 1
