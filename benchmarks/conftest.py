"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or an ablation) at
the scale selected by the ``FUBAR_FULL_SCALE`` environment variable — the
reduced 8-POP configuration by default, the paper's full 31-POP core when the
variable is set (see EXPERIMENTS.md).  Benchmarks print the same rows/series
the paper plots so the output can be compared side by side with the figures.
"""

from __future__ import annotations

import os

import pytest

#: Seed used by the single-run figure benchmarks.
BENCH_SEED = int(os.environ.get("FUBAR_BENCH_SEED", "1"))

#: Number of repeated runs used by the Figure 7 repeatability benchmark.
BENCH_FIG7_RUNS = int(os.environ.get("FUBAR_BENCH_FIG7_RUNS", "5"))


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark timing.

    The figure experiments are full optimizer runs (seconds each), so a
    single timed round keeps the suite's total wall-clock reasonable while
    still recording the runtime alongside the reproduced series.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_header(title: str) -> None:
    """Print a banner separating one benchmark's output from the next."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def format_optional(value, spec: str = ".4f") -> str:
    """Format a possibly-None metric (e.g. the large-flow utility when a
    seed draws no large-transfer aggregates) as a dash instead of crashing."""
    return "-" if value is None else format(value, spec)


@pytest.fixture
def bench_seed():
    return BENCH_SEED
