"""Experiment E7 — Figure 7: repeatability across random traffic matrices.

Repeats the provisioned case over several random traffic matrices — fanned
out in parallel by the sweep runner — and prints the CDFs of FUBAR utility,
shortest-path utility and the maximal (upper bound) utility.  The paper uses
100 runs; the benchmark default is ``FUBAR_BENCH_FIG7_RUNS`` (5) so the
suite stays quick — pass 100 and ``FUBAR_FULL_SCALE=1`` to reproduce the
exact configuration.

Paper expectation: in every run FUBAR closely approaches the theoretical
limit and clearly beats shortest-path routing.
"""

import numpy as np

from benchmarks.conftest import BENCH_FIG7_RUNS, print_header, run_once
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.reporting import format_cdf, format_table
from repro.runner.cache import ResultCache
from repro.runner.engine import run_sweep
from repro.runner.spec import CellSpec


def test_figure7_repeatability(benchmark, tmp_path):
    specs = [CellSpec("he-provisioned", seed=seed) for seed in range(BENCH_FIG7_RUNS)]
    cache = ResultCache(tmp_path / "fig7-cache")

    result = run_once(benchmark, run_sweep, specs, cache=cache)
    assert not result.failed, [record["error"] for record in result.failed]

    fubar = [r["schemes"]["fubar"]["utility"] for r in result.records]
    shortest = [r["schemes"]["shortest-path"]["utility"] for r in result.records]
    bound = [r["upper_bound_utility"] for r in result.records]

    print_header(
        f"Figure 7: CDF over {len(specs)} random traffic matrices "
        f"(parallel sweep, {result.stats.computed} computed)"
    )
    print("\nFUBAR utility CDF:")
    print(format_cdf(EmpiricalCDF(fubar)))
    print("\nShortest-path utility CDF:")
    print(format_cdf(EmpiricalCDF(shortest)))
    print("\nUpper-bound utility CDF:")
    print(format_cdf(EmpiricalCDF(bound)))

    gaps = np.asarray(bound) - np.asarray(fubar)
    summary = {
        "runs": float(len(specs)),
        "fubar_median": float(np.median(fubar)),
        "shortest_path_median": float(np.median(shortest)),
        "upper_bound_median": float(np.median(bound)),
        "median_gap_to_bound": float(np.median(gaps)),
        "fraction_above_shortest_path": float(
            np.mean(np.asarray(fubar) >= np.asarray(shortest) - 1e-9)
        ),
    }
    print("\nSummary:")
    print(
        format_table(
            ("metric", "value"),
            [(key, f"{value:.4f}") for key, value in summary.items()],
        )
    )

    # Shape assertions from the paper.
    assert summary["fraction_above_shortest_path"] == 1.0
    assert summary["fubar_median"] >= summary["shortest_path_median"]
    assert summary["median_gap_to_bound"] <= 0.1
