"""Experiment E7 — Figure 7: repeatability across random traffic matrices.

Repeats the provisioned case over several random traffic matrices and prints
the CDFs of FUBAR utility, shortest-path utility and the maximal (upper
bound) utility.  The paper uses 100 runs; the benchmark default is
``FUBAR_BENCH_FIG7_RUNS`` (5) so the suite stays quick — pass 100 and
``FUBAR_FULL_SCALE=1`` to reproduce the exact configuration.

Paper expectation: in every run FUBAR closely approaches the theoretical
limit and clearly beats shortest-path routing.
"""

from benchmarks.conftest import BENCH_FIG7_RUNS, print_header, run_once
from repro.experiments.figures import run_figure7
from repro.metrics.reporting import format_cdf, format_table


def test_figure7_repeatability(benchmark):
    result = run_once(benchmark, run_figure7, num_runs=BENCH_FIG7_RUNS, base_seed=0)

    print_header(f"Figure 7: CDF over {result.num_runs} random traffic matrices")
    print("\nFUBAR utility CDF:")
    print(format_cdf(result.fubar_cdf()))
    print("\nShortest-path utility CDF:")
    print(format_cdf(result.shortest_path_cdf()))
    print("\nUpper-bound utility CDF:")
    print(format_cdf(result.upper_bound_cdf()))
    summary = result.summary()
    print("\nSummary:")
    print(
        format_table(
            ("metric", "value"),
            [(key, f"{value:.4f}") for key, value in summary.items()],
        )
    )

    # Shape assertions from the paper.
    assert summary["fraction_above_shortest_path"] == 1.0
    assert summary["fubar_median"] >= summary["shortest_path_median"]
    assert summary["median_gap_to_bound"] <= 0.1
