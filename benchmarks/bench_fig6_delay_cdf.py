"""Experiment E6 — Figure 6: relaxing the delay restriction.

Runs the underprovisioned case twice — once with the standard delay curves
and once with the small-flow delay parameter doubled — and prints the two
flow-delay CDFs plus the percentile shifts.

Paper expectation: utility (and utilization) increase a little, and the flow
delay distribution shifts right (median ~10 ms, tail ~50 ms on the full
core).  At the reduced benchmark scale the utility increase reproduces; the
delay shift requires intercontinental path diversity and is therefore
reported but only asserted at full scale (see EXPERIMENTS.md, E6).
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.figures import run_figure6
from repro.experiments.scenarios import full_scale_enabled
from repro.metrics.reporting import format_cdf, format_table


def test_figure6_delay_relaxation(benchmark):
    result = run_once(benchmark, run_figure6, seed=BENCH_SEED)

    print_header("Figure 6: flow delay CDFs, original vs relaxed delay")
    print("\nOriginal delay CDF (seconds):")
    print(format_cdf(result.original_cdf))
    print("\nRelaxed delay CDF (seconds):")
    print(format_cdf(result.relaxed_cdf))
    summary = result.summary()
    print("\nSummary:")
    print(
        format_table(
            ("metric", "value"),
            [(key, f"{value:.4f}") for key, value in summary.items()],
        )
    )

    # Relaxing a constraint can only help the objective.
    assert summary["relaxed_utility"] >= summary["original_utility"] - 1e-9
    # Paths can only get longer when the delay restriction is relaxed.
    assert summary["median_shift_ms"] >= -1e-6
    if full_scale_enabled():
        # The paper's headline observation needs intercontinental paths.
        assert summary["median_shift_ms"] > 0.0
