"""Capacity-planning benchmark: warm-started bisection vs cold restarts.

The provisioning subsystem's inner loop is a chain of FUBAR runs over
capacity variants of one topology; the whole point of threading warm starts
through that chain (:mod:`repro.provisioning.frontier`) is that a probe
seeded from a neighbouring probe's plan converges in fewer model
evaluations than one restarted from shortest paths.  Three gates:

* **warm cheaper than cold, frontier identical** — the warm-started
  bisection must probe the *same* capacities, reach the *same* minimal
  capacity, and spend strictly fewer model evaluations than the
  cold-restart bisection;
* **monotone frontier** — utility must never decrease along the reported
  capacity axis (the monotone-repair invariant);
* **survivability costs capacity** — the survivable capacity (same utility
  target, every non-disconnecting single-link failure) must be at least the
  failure-free minimal capacity.

    PYTHONPATH=src python -m benchmarks.bench_provisioning \
        --output BENCH_provisioning.json

The pytest entry point runs the same comparison at reduced scale inside the
CI bench-smoke job, so a regression in any gate fails the build.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, Optional

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.scenarios import build_sweep_scenario
from repro.metrics.reporting import format_table
from repro.provisioning import (
    greedy_link_upgrades,
    minimal_uniform_capacity,
    survivable_capacity,
)

#: Default location of the provisioning benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_provisioning.json"

#: Schema version of BENCH_provisioning.json.
BENCH_SCHEMA = 1

#: Utility goal of the frontier searches.
FRONTIER_TARGET_UTILITY = 0.97

#: Utility goal shared by the survivable search and its failure-free
#: reference (survivability headroom is only comparable at equal targets).
SURVIVABLE_TARGET_UTILITY = 0.95

#: Search ceiling of the survivable search, as a multiple of the reference
#: capacity: surviving the worst cut can take well over twice the healthy
#: minimal capacity.
SURVIVABLE_MAX_SCALE = 3.0


def measure_provisioning(
    seed: int = BENCH_SEED,
    num_pops: Optional[int] = None,
    max_probes: int = 10,
    survivable_max_probes: int = 6,
    num_upgrades: int = 4,
    max_steps: Optional[int] = None,
) -> Dict:
    """Run the three capacity-planning searches and their comparisons.

    ``max_steps`` bounds each probe's committed optimizer steps for
    affordable full-scale records (mirroring the other loop benchmarks);
    warm and cold searches are capped alike, so the evaluation-count gate
    stays an apples-to-apples comparison.
    """
    scenario = build_sweep_scenario(
        topology="hurricane-electric",
        num_pops=num_pops,
        seed=seed,
        max_steps=max_steps,
    )
    frontier_kwargs = dict(
        target_utility=FRONTIER_TARGET_UTILITY,
        max_probes=max_probes,
        fubar_config=scenario.fubar_config,
    )
    warm = minimal_uniform_capacity(
        scenario.network, scenario.traffic_matrix, warm_start=True, **frontier_kwargs
    )
    cold = minimal_uniform_capacity(
        scenario.network, scenario.traffic_matrix, warm_start=False, **frontier_kwargs
    )

    upgrade_scenario = build_sweep_scenario(
        topology="hurricane-electric",
        num_pops=num_pops,
        provisioning_ratio=0.6,
        seed=seed,
        max_steps=max_steps,
    )
    upgrades = greedy_link_upgrades(
        upgrade_scenario.network,
        upgrade_scenario.traffic_matrix,
        num_upgrades=num_upgrades,
        fubar_config=upgrade_scenario.fubar_config,
    )

    reference = max(link.capacity_bps for link in scenario.network.links)
    survivable = survivable_capacity(
        scenario.network,
        scenario.traffic_matrix,
        target_utility=SURVIVABLE_TARGET_UTILITY,
        max_capacity_bps=SURVIVABLE_MAX_SCALE * reference,
        max_probes=survivable_max_probes,
        fubar_config=scenario.fubar_config,
    )
    failure_free = minimal_uniform_capacity(
        scenario.network,
        scenario.traffic_matrix,
        target_utility=SURVIVABLE_TARGET_UTILITY,
        max_probes=max_probes,
        fubar_config=scenario.fubar_config,
    )

    warm_evals = warm.total_model_evaluations
    cold_evals = cold.total_model_evaluations
    return {
        "schema": BENCH_SCHEMA,
        "scenario": dict(scenario.summary()),
        "seed": seed,
        "max_steps": max_steps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "frontier": {"warm": warm.as_dict(), "cold": cold.as_dict()},
        "upgrades": upgrades.as_dict(),
        "survivable": survivable.as_dict(),
        "failure_free_frontier": failure_free.as_dict(),
        "comparison": {
            "warm_model_evaluations": warm_evals,
            "cold_model_evaluations": cold_evals,
            "evaluations_saved_fraction": (
                1.0 - warm_evals / cold_evals if cold_evals else None
            ),
            "identical_probe_capacities": list(warm.capacities) == list(cold.capacities),
            "warm_minimal_capacity_bps": warm.minimal_capacity_bps,
            "cold_minimal_capacity_bps": cold.minimal_capacity_bps,
            "warm_frontier_monotone": warm.is_monotone(),
            "survivable_capacity_bps": survivable.survivable_capacity_bps,
            "failure_free_capacity_bps": failure_free.minimal_capacity_bps,
            "survivability_headroom": (
                survivable.survivable_capacity_bps / failure_free.minimal_capacity_bps
                if survivable.survivable_capacity_bps is not None
                and failure_free.minimal_capacity_bps
                else None
            ),
        },
    }


def _assert_acceptance(record: Dict) -> None:
    """The acceptance gates, shared by pytest and the CLI."""
    comparison = record["comparison"]
    assert comparison["identical_probe_capacities"], (
        "warm and cold bisections diverged: they probed different capacities, "
        "so their evaluation counts are not comparable"
    )
    assert (
        comparison["warm_minimal_capacity_bps"]
        == comparison["cold_minimal_capacity_bps"]
    ), (
        "warm and cold bisections disagree on the minimal capacity: "
        f"{comparison['warm_minimal_capacity_bps']} vs "
        f"{comparison['cold_minimal_capacity_bps']}"
    )
    assert comparison["warm_model_evaluations"] < comparison["cold_model_evaluations"], (
        "warm-started bisection was not cheaper than cold restarts: "
        f"{comparison['warm_model_evaluations']} vs "
        f"{comparison['cold_model_evaluations']} model evaluations"
    )
    assert comparison["warm_frontier_monotone"], (
        "the warm frontier is not monotone in capacity"
    )
    survivable = comparison["survivable_capacity_bps"]
    failure_free = comparison["failure_free_capacity_bps"]
    assert survivable is not None, "no survivable capacity found in the search range"
    assert failure_free is not None, "no failure-free minimal capacity found"
    assert survivable >= failure_free, (
        "survivable capacity fell below the failure-free minimal capacity: "
        f"{survivable} vs {failure_free}"
    )
    upgrades = record["upgrades"]
    assert all(
        step["utility_gain"] >= -1e-9 for step in upgrades["steps"]
    ), "a committed upgrade lost utility"


def _print_record(record: Dict) -> None:
    print_header("Capacity planning: warm-started bisection vs cold restarts")
    comparison = record["comparison"]
    rows = []
    for mode in ("warm", "cold"):
        frontier = record["frontier"][mode]
        rows.append(
            (
                mode,
                str(len(frontier["points"])),
                f"{frontier['minimal_capacity_bps'] / 1e6:.1f}"
                if frontier["minimal_capacity_bps"] is not None
                else "-",
                str(frontier["total_model_evaluations"]),
                "yes" if frontier["monotone"] else "NO",
            )
        )
    print(format_table(("start", "probes", "minimal (Mbps)", "evals", "monotone"), rows))
    saved = comparison["evaluations_saved_fraction"]
    print(
        f"\nwarm starts save {saved:.0%} of bisection model evaluations "
        f"({comparison['warm_model_evaluations']} vs "
        f"{comparison['cold_model_evaluations']}) at an identical frontier"
    )
    upgrades = record["upgrades"]
    print(
        f"\nupgrade path: utility {upgrades['base_utility']:.4f} -> "
        f"{upgrades['final_utility']:.4f} over {len(upgrades['steps'])} "
        f"upgrade(s), +{upgrades['total_added_bps'] / 1e6:.0f} Mbps"
    )
    headroom = comparison["survivability_headroom"]
    if headroom is not None:
        print(
            f"survivability headroom: x{headroom:.2f} "
            f"({comparison['survivable_capacity_bps'] / 1e6:.1f} Mbps survivable vs "
            f"{comparison['failure_free_capacity_bps'] / 1e6:.1f} Mbps failure-free)"
        )


# ------------------------------------------------------------------- pytest


def test_provisioning_warm_bisection(benchmark):
    """CI smoke gate: warm bisection cheaper, frontier identical + monotone,
    survivable capacity at or above the failure-free minimum."""
    record = run_once(benchmark, measure_provisioning)
    _print_record(record)
    _assert_acceptance(record)


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure capacity planning and write BENCH_provisioning.json"
    )
    parser.add_argument(
        "--num-pops",
        type=int,
        default=None,
        help="POP count (defaults to the scenario default; 31 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--max-probes",
        type=int,
        default=10,
        help="bisection probe budget of the frontier searches (default 10)",
    )
    parser.add_argument(
        "--survivable-max-probes",
        type=int,
        default=6,
        help="probe budget of the survivable search (default 6)",
    )
    parser.add_argument(
        "--num-upgrades",
        type=int,
        default=4,
        help="committed upgrades of the greedy upgrade path (default 4)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="optimizer step budget per probe (bounds full-scale wall clock)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_provisioning(
        seed=args.seed,
        num_pops=args.num_pops,
        max_probes=args.max_probes,
        survivable_max_probes=args.survivable_max_probes,
        num_upgrades=args.num_upgrades,
        max_steps=args.max_steps,
    )
    _print_record(record)
    _assert_acceptance(record)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
