"""Ablation A2 — the §2.5 local-optimum escape.

Paper §2.5 escapes local optima by "progressively giving more and more
flows" to each move when no progress can be made, and only gives up after
whole aggregates have been tried.  This ablation compares the full escape
schedule against a single-level schedule (no escalation) on the same
underprovisioned scenario.
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.core.config import FubarConfig
from repro.core.controller import Fubar
from repro.experiments.scenarios import underprovisioned_scenario
from repro.metrics.reporting import format_table


def _run_with_escalation(multipliers):
    scenario = underprovisioned_scenario(seed=BENCH_SEED)
    base = scenario.fubar_config
    config = FubarConfig(
        move_fraction=base.move_fraction,
        small_aggregate_flows=base.small_aggregate_flows,
        escalation_multipliers=multipliers,
        priority_weights=base.priority_weights,
    )
    return Fubar(scenario.network, config=config).optimize(scenario.traffic_matrix)


def test_ablation_local_optimum_escape(benchmark):
    def run_both():
        return _run_with_escalation((1.0, 2.0, 4.0)), _run_with_escalation((1.0,))

    with_escape, without_escape = run_once(benchmark, run_both)

    print_header("Ablation A2: escaping local optima (paper §2.5)")
    rows = [
        (
            "escalating move fractions (paper)",
            f"{with_escape.network_utility:.4f}",
            with_escape.result.num_steps,
            f"{with_escape.result.wall_clock_s:.2f}",
        ),
        (
            "no escalation",
            f"{without_escape.network_utility:.4f}",
            without_escape.result.num_steps,
            f"{without_escape.result.wall_clock_s:.2f}",
        ),
    ]
    print(format_table(("variant", "utility", "steps", "wall_clock_s"), rows))

    # The escape can only add improving moves on top of the no-escape run.
    assert with_escape.network_utility >= without_escape.network_utility - 1e-9
