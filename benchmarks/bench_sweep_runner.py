"""Experiment E8 — cross-topology scenario sweep.

Runs the runner's default sweep grid — both Hurricane Electric provisioning
regimes, the prioritized variant, Abilene at two provisioning ratios, GÉANT,
and the two random topology families — in parallel, and prints the
aggregated FUBAR-vs-baselines comparison.  This is the evaluation the paper
never had room for: the same optimizer across families of topologies and
demand regimes.

Expectation: FUBAR matches or beats shortest-path routing in every cell and
is the best scheme in almost all of them.
"""

from benchmarks.conftest import print_header, run_once
from repro.runner.cache import ResultCache
from repro.runner.engine import run_sweep
from repro.runner.registry import default_sweep_specs
from repro.runner.report import aggregate_summary, format_sweep_report


def test_default_sweep_grid(benchmark, tmp_path):
    specs = default_sweep_specs()
    cache = ResultCache(tmp_path / "sweep-cache")

    result = run_once(benchmark, run_sweep, specs, cache=cache)

    print_header(f"Scenario sweep: {len(specs)} cells across 5 topology families")
    print(format_sweep_report(result.records, result.stats.as_dict()))

    assert not result.failed, [record["error"] for record in result.failed]
    summary = aggregate_summary(result.records)
    assert summary["succeeded"] == len(specs)
    # FUBAR never loses to its own starting point.
    for record in result.records:
        fubar = record["schemes"]["fubar"]["utility"]
        shortest = record["schemes"]["shortest-path"]["utility"]
        assert fubar >= shortest - 1e-9

    # A repeated sweep must be served entirely from the cache.
    again = run_sweep(specs, cache=cache)
    assert again.stats.cache_hits == len(specs)
    assert again.stats.computed == 0
    assert [r["config_hash"] for r in again.records] == [
        r["config_hash"] for r in result.records
    ]
