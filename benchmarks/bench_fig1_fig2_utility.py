"""Experiment E1/E2 — Figures 1 and 2: utility function components.

Prints the bandwidth and delay component curves of the real-time and bulk
traffic classes, i.e. the data behind Figures 1 and 2.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import run_figure1_figure2
from repro.metrics.reporting import format_table


def test_figure1_figure2_utility_curves(benchmark):
    curves = run_once(benchmark, run_figure1_figure2, num_points=11)

    print_header("Figures 1 & 2: utility function components")
    for name, data in curves.items():
        rows = [
            (
                f"{bandwidth:.0f}",
                f"{bandwidth_utility:.3f}",
                f"{delay:.0f}",
                f"{delay_utility:.3f}",
            )
            for bandwidth, bandwidth_utility, delay, delay_utility in zip(
                data["bandwidth_kbps"],
                data["bandwidth_utility"],
                data["delay_ms"],
                data["delay_utility"],
            )
        ]
        print(f"\n[{name}]")
        print(
            format_table(
                ("bandwidth_kbps", "bw_utility", "delay_ms", "delay_utility"), rows
            )
        )

    # Shape checks mirroring the figures.
    real_time = curves["real-time"]
    assert max(real_time["bandwidth_utility"]) == 1.0
    assert real_time["delay_utility"][-1] == 0.0
    assert curves["bulk"]["delay_utility"][-1] > 0.0
