"""Experiment E3 — Figure 3: a run of the provisioned case.

Regenerates the three panels of Figure 3 (average utility over time, utility
of large flows, link utilization actual vs demanded) together with the
shortest-path and upper-bound reference lines.  The cell is evaluated through
the scenario-sweep runner (``repro.runner``), which also yields the ECMP and
min-max-LP baselines the paper discusses in related work.

Paper expectation: FUBAR improves markedly on shortest-path routing, closely
approaches the upper bound and eliminates congestion (the actual and demanded
utilization curves meet).
"""

from benchmarks.conftest import BENCH_SEED, format_optional, print_header, run_once
from repro.metrics.reporting import format_utility_timeline
from repro.runner.engine import evaluate_cell
from repro.runner.report import format_sweep_report
from repro.runner.spec import CellSpec
from repro.traffic.classes import LARGE_TRANSFER


def test_figure3_provisioned_case(benchmark):
    spec = CellSpec("he-provisioned", seed=BENCH_SEED)
    outcome = run_once(benchmark, evaluate_cell, spec)

    print_header("Figure 3: provisioned case (100 Mbps links)")
    print(outcome.scenario.summary())
    print("\nOptimization timeline (left/middle/right panels):")
    print(format_utility_timeline(outcome.plan.result.recorder))
    print("\nComparison against every baseline (runner cell):")
    print(format_sweep_report([outcome.to_record()]))
    model = outcome.plan.result.model_result
    print(
        f"\nlarge flows final: {format_optional(model.class_utility(LARGE_TRANSFER))}, "
        f"congested links remaining: {len(model.congested_links)}, "
        f"steps: {outcome.plan.result.num_steps}, "
        f"wall clock: {outcome.plan.result.wall_clock_s:.2f}s"
    )

    # Shape assertions from the paper.
    assert outcome.final_utility >= outcome.shortest_path_utility - 1e-9
    assert outcome.final_utility >= 0.9 * outcome.upper_bound
    times, large = outcome.plan.result.recorder.class_utility_series(LARGE_TRANSFER)
    assert len(times) == len(large)
