"""Experiment E3 — Figure 3: a run of the provisioned case.

Regenerates the three panels of Figure 3 (average utility over time, utility
of large flows, link utilization actual vs demanded) together with the
shortest-path and upper-bound reference lines.

Paper expectation: FUBAR improves markedly on shortest-path routing, closely
approaches the upper bound and eliminates congestion (the actual and demanded
utilization curves meet).
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.figures import run_figure3
from repro.metrics.reporting import format_table, format_utility_timeline
from repro.traffic.classes import LARGE_TRANSFER


def test_figure3_provisioned_case(benchmark):
    result = run_once(benchmark, run_figure3, seed=BENCH_SEED)

    print_header("Figure 3: provisioned case (100 Mbps links)")
    print(result.scenario.summary())
    print("\nOptimization timeline (left/middle/right panels):")
    print(format_utility_timeline(result.plan.result.recorder))
    summary = result.summary()
    print("\nReference lines:")
    print(
        format_table(
            ("series", "utility"),
            [
                ("shortest path (lower bound)", f"{summary['shortest_path_utility']:.4f}"),
                ("FUBAR final", f"{summary['fubar_utility']:.4f}"),
                ("upper bound", f"{summary['upper_bound_utility']:.4f}"),
                ("large flows final", f"{summary['large_flow_utility']:.4f}"),
            ],
        )
    )
    print(
        f"\ncongested links remaining: {summary['congested_links_remaining']}, "
        f"steps: {summary['steps']}, wall clock: {summary['wall_clock_s']:.2f}s"
    )

    # Shape assertions from the paper.
    assert result.final_utility >= result.shortest_path_utility - 1e-9
    assert result.final_utility >= 0.9 * result.upper_bound
    times, large = result.large_flow_series()
    assert len(times) == len(large)
