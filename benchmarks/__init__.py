"""Benchmark harness regenerating every figure in the paper's evaluation."""
