"""Ablation A1 — the §2.4 path-generation design choice.

Paper §2.4 argues that querying three targeted alternatives (global / local /
link-local) is "the best tradeoff between speed and solution quality".  This
ablation compares:

* ``three-alternatives`` — the paper's design (also reusing known paths),
* ``fresh-alternatives-only`` — the narrowest reading of Listing 2 (only the
  three freshly generated paths are tested, never previously added ones),

on the same underprovisioned scenario, reporting final utility, steps and
traffic-model evaluations (the cost driver).
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.core.config import FubarConfig
from repro.core.controller import Fubar
from repro.experiments.scenarios import underprovisioned_scenario
from repro.metrics.reporting import format_table


def _run_variant(consider_existing_paths: bool):
    scenario = underprovisioned_scenario(seed=BENCH_SEED)
    base = scenario.fubar_config
    config = FubarConfig(
        move_fraction=base.move_fraction,
        small_aggregate_flows=base.small_aggregate_flows,
        escalation_multipliers=base.escalation_multipliers,
        consider_existing_paths=consider_existing_paths,
        priority_weights=base.priority_weights,
    )
    plan = Fubar(scenario.network, config=config).optimize(scenario.traffic_matrix)
    return plan


def test_ablation_path_generation(benchmark):
    def run_both():
        return _run_variant(True), _run_variant(False)

    with_existing, fresh_only = run_once(benchmark, run_both)

    print_header("Ablation A1: path candidate sets (paper §2.4)")
    rows = []
    for name, plan in (
        ("three-alternatives + known paths", with_existing),
        ("fresh-alternatives-only", fresh_only),
    ):
        rows.append(
            (
                name,
                f"{plan.network_utility:.4f}",
                plan.result.num_steps,
                plan.result.model_evaluations,
                f"{plan.result.wall_clock_s:.2f}",
            )
        )
    print(format_table(("variant", "utility", "steps", "model_evals", "wall_clock_s"), rows))

    # Both variants must at least match their shortest-path starting point;
    # reusing known paths can only widen the candidate set.
    for plan in (with_existing, fresh_only):
        assert plan.improvement_over_shortest_path >= -1e-9
    assert with_existing.network_utility >= fresh_only.network_utility - 0.02
