"""Dynamic control-loop benchmark: warm-started vs cold-started cycles.

The paper's deployment story (§5) is a loop that keeps re-optimizing as
demand changes.  This benchmark closes that loop over a drifting Hurricane
Electric matrix (per-aggregate random-walk demand) and measures what
warm-starting each cycle from the previous plan buys:

* **model evaluations per cycle** — the acceptance metric: warm-started
  cycles start near the previous optimum and must need measurably fewer
  evaluations than cold restarts from shortest paths;
* **rule churn per epoch** — the differential install's flow-table writes;
* **delivered utility** — warm starts must not trade solution quality away.

A second, *static* run is the equivalence gate: on unchanging traffic a
warm-started loop must deliver the same utility as a cold-started one
(within 1%), because warm cycles begin at the previous optimum and find
nothing to improve.

    PYTHONPATH=src python -m benchmarks.bench_dynamic_loop \
        --num-pops 31 --num-epochs 6 --output BENCH_dynamic_loop.json

The pytest entry point runs the same comparison at reduced scale and is part
of the CI bench-smoke job, so control-loop drift fails the build.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, Optional

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.dynamics.loop import ControlLoopConfig, format_epoch_table, run_control_loop
from repro.dynamics.processes import RandomWalkProcess, StaticProcess
from repro.experiments.scenarios import build_sweep_scenario
from repro.metrics.reporting import format_table

#: Default location of the dynamic-loop benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_dynamic_loop.json"

#: Schema version of BENCH_dynamic_loop.json.
BENCH_SCHEMA = 1

#: Warm and cold loops must agree on delivered utility within this relative
#: tolerance on *static* traffic (the control-loop drift gate).
STATIC_UTILITY_RTOL = 0.01


def _run_loop(scenario, process, num_epochs: int, warm_start: bool) -> Dict:
    loop_config = ControlLoopConfig(num_epochs=num_epochs, warm_start=warm_start)
    result = run_control_loop(
        scenario.network, process, fubar_config=scenario.fubar_config,
        loop_config=loop_config,
    )
    record = dict(result.summary())
    record["epochs"] = [epoch.as_dict() for epoch in result.records]
    return record


def measure_dynamic_loop(
    seed: int = BENCH_SEED,
    num_epochs: int = 5,
    num_pops: Optional[int] = None,
    provisioning_ratio: float = 0.75,
    step_std: float = 0.15,
    max_steps: Optional[int] = None,
) -> Dict:
    """Compare warm vs cold control-loop cycles on drifting and static traffic.

    The drifting case uses the underprovisioned regime so every cycle has
    congestion to work on; its per-cycle model-evaluation counts (first epoch
    excluded — no previous plan exists there) are the headline numbers.

    ``max_steps`` bounds each cycle's committed optimizer steps, which is how
    the full 31-POP record stays affordable (mirroring
    ``bench_running_time``).  With a cap, cold cycles never converge while a
    warm run keeps improving across cycles, so the static warm-equals-cold
    gate is only asserted on uncapped runs.
    """
    scenario = build_sweep_scenario(
        topology="hurricane-electric",
        num_pops=num_pops,
        provisioning_ratio=provisioning_ratio,
        seed=seed,
        max_steps=max_steps,
    )
    drift = RandomWalkProcess(scenario.traffic_matrix, seed=seed, step_std=step_std)
    static = StaticProcess(scenario.traffic_matrix)

    runs = {
        "drift": {
            "cold": _run_loop(scenario, drift, num_epochs, warm_start=False),
            "warm": _run_loop(scenario, drift, num_epochs, warm_start=True),
        },
        "static": {
            "cold": _run_loop(scenario, static, num_epochs, warm_start=False),
            "warm": _run_loop(scenario, static, num_epochs, warm_start=True),
        },
    }

    cold_evals = runs["drift"]["cold"]["mean_model_evaluations_per_cycle"]
    warm_evals = runs["drift"]["warm"]["mean_model_evaluations_per_cycle"]
    return {
        "schema": BENCH_SCHEMA,
        "scenario": dict(scenario.summary()),
        "seed": seed,
        "num_epochs": num_epochs,
        "step_std": step_std,
        "max_steps": max_steps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "runs": runs,
        "comparison": {
            "cold_mean_evaluations_per_cycle": cold_evals,
            "warm_mean_evaluations_per_cycle": warm_evals,
            "evaluations_saved_fraction": (
                1.0 - warm_evals / cold_evals if cold_evals else None
            ),
            "cold_mean_delivered_utility": runs["drift"]["cold"][
                "mean_delivered_utility"
            ],
            "warm_mean_delivered_utility": runs["drift"]["warm"][
                "mean_delivered_utility"
            ],
            "static_cold_mean_delivered_utility": runs["static"]["cold"][
                "mean_delivered_utility"
            ],
            "static_warm_mean_delivered_utility": runs["static"]["warm"][
                "mean_delivered_utility"
            ],
            "cold_total_rule_churn": runs["drift"]["cold"]["total_rule_churn"],
            "warm_total_rule_churn": runs["drift"]["warm"]["total_rule_churn"],
        },
    }


def _assert_acceptance(record: Dict) -> None:
    """The acceptance gates, shared by pytest and the CLI."""
    comparison = record["comparison"]
    assert comparison["warm_mean_evaluations_per_cycle"] < (
        comparison["cold_mean_evaluations_per_cycle"]
    ), "warm start did not reduce model evaluations per cycle"
    if record.get("max_steps") is not None:
        # Capped cold cycles never converge, so warm legitimately beats them
        # on static traffic; the equivalence gate only applies uncapped.
        return
    static_cold = comparison["static_cold_mean_delivered_utility"]
    static_warm = comparison["static_warm_mean_delivered_utility"]
    assert abs(static_warm - static_cold) <= STATIC_UTILITY_RTOL * max(
        abs(static_cold), 1e-12
    ), (
        "warm-started loop drifted from the cold-started loop on static "
        f"traffic: {static_warm} vs {static_cold}"
    )


def _print_record(record: Dict) -> None:
    print_header("Dynamic control loop: warm vs cold re-optimization")
    rows = []
    for process_name, by_mode in record["runs"].items():
        for mode, run in by_mode.items():
            rows.append(
                (
                    process_name,
                    mode,
                    f"{run['mean_model_evaluations_per_cycle']:.1f}",
                    run["total_steps"],
                    f"{run['mean_delivered_utility']:.4f}",
                    run["total_rule_churn"],
                    f"{run['total_optimize_wall_clock_s']:.2f}",
                )
            )
    print(
        format_table(
            (
                "traffic",
                "start",
                "evals/cycle",
                "steps",
                "delivered",
                "churn",
                "opt_wall_s",
            ),
            rows,
        )
    )
    comparison = record["comparison"]
    saved = comparison["evaluations_saved_fraction"]
    print(
        f"\nwarm start saves {saved:.0%} of model evaluations per cycle on "
        f"drifting traffic ({comparison['warm_mean_evaluations_per_cycle']:.1f} "
        f"vs {comparison['cold_mean_evaluations_per_cycle']:.1f})"
    )
    print("\nper-epoch trajectory (drifting traffic, warm start):")
    print(format_epoch_table(record["runs"]["drift"]["warm"]["epochs"]))


# ------------------------------------------------------------------- pytest


def test_dynamic_loop_warm_start(benchmark):
    """CI smoke gate: warm cycles are cheaper; static warm == static cold."""
    record = run_once(benchmark, measure_dynamic_loop, num_epochs=4)
    _print_record(record)
    _assert_acceptance(record)


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the dynamic control loop and write BENCH_dynamic_loop.json"
    )
    parser.add_argument(
        "--num-pops",
        type=int,
        default=None,
        help="POP count (defaults to the scenario default; 31 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--num-epochs",
        type=int,
        default=5,
        help="control-loop cycles per run (default 5)",
    )
    parser.add_argument(
        "--step-std",
        type=float,
        default=0.15,
        help="random-walk drift step size (default 0.15)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="optimizer step budget per cycle (bounds full-scale wall clock; "
        "disables the static equivalence gate)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_dynamic_loop(
        seed=args.seed,
        num_epochs=args.num_epochs,
        num_pops=args.num_pops,
        step_std=args.step_std,
        max_steps=args.max_steps,
    )
    _print_record(record)
    _assert_acceptance(record)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
