"""Fleet sweep benchmark — worker-affinity cache sharing vs cold starts (ISSUE 7).

The sweep engine groups cells by
:meth:`~repro.runner.spec.CellSpec.cache_affinity_key` so same-topology
cells land on the same worker, whose process-local
:class:`~repro.runner.worker.WorkerCaches` keep the path generators
(including their k-shortest-path memos) and compiled traffic-model engines
warm between cells.  This benchmark measures what that sharing is worth on
the workload it targets: a 12-cell same-topology sweep — one tiered-metro
instance (~95 nodes, fixed seed) swept across optimizer step budgets, the
shape of a convergence study — run twice through :func:`run_sweep` on one
worker:

* **shared** — ``share_caches=True``: the first cell pays for path
  generation and engine compilation, the remaining eleven reuse them;
* **isolated** — ``share_caches=False``: every cell cold-starts, which is
  also the correctness reference the shared records must match byte for
  byte (timing stripped).

Byte-identity is a hard gate: any record divergence fails the run before
timing is even reported.  Regenerate the committed record with:

    PYTHONPATH=src python -m benchmarks.bench_fleet --output BENCH_fleet.json

The pytest entry point is the CI bench-smoke fleet gate: shared must reach
>= 1.5x the isolated cells/sec with identical records.
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from benchmarks.conftest import print_header, run_once
from repro.metrics.reporting import format_table
from repro.runner.cache import ResultCache
from repro.runner.engine import run_sweep
from repro.runner.spec import CellSpec
from repro.runner.worker import WorkerCaches, install_worker_caches

#: Default location of the fleet benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

#: Schema version of BENCH_fleet.json.
BENCH_SCHEMA = 1

#: The measured sweep: one tiered-metro instance swept over step budgets.
#: The topology is fixed (one seed), so all twelve cells share one affinity
#: group — the workload the warm caches exist for.
SWEEP_FAMILY = "tiered-metro"
SWEEP_SEED = 1
SWEEP_STEP_BUDGETS = tuple(range(4, 16))

#: The CI gate: shared-cache cells/sec over isolated cells/sec.
GATE_MIN_SPEEDUP = 1.5


def sweep_specs() -> List[CellSpec]:
    """The 12 same-topology cells of the measured sweep."""
    return [
        CellSpec(SWEEP_FAMILY, {"max_steps": steps}, seed=SWEEP_SEED)
        for steps in SWEEP_STEP_BUDGETS
    ]


def _strip_timing(value):
    """Drop every wall-clock field so records compare on content only."""
    if isinstance(value, dict):
        return {
            k: _strip_timing(v)
            for k, v in value.items()
            if not k.endswith("wall_clock_s")
        }
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


def _run_arm(share_caches: bool) -> Dict:
    """One full sweep into a throwaway cache; returns records + wall clock."""
    specs = sweep_specs()
    with tempfile.TemporaryDirectory() as directory:
        started = time.perf_counter()
        result = run_sweep(
            specs,
            jobs=1,
            cache=ResultCache(directory),
            share_caches=share_caches,
        )
        elapsed = time.perf_counter() - started
    if result.failed:
        raise RuntimeError(
            f"benchmark cell failed: {result.failed[0].get('error')}"
        )
    return {"records": result.records, "wall_clock_s": elapsed}


def measure_fleet(reps: int = 3) -> Dict:
    """The full BENCH_fleet.json record: shared vs isolated cells/sec.

    Arms are interleaved inside every repetition (best-of-*reps* each) so
    machine-load drift hits both equally and the reported ratio stays
    stable.  Records from the first repetition of each arm feed the
    byte-identity check.
    """
    num_cells = len(sweep_specs())
    best = {True: float("inf"), False: float("inf")}
    reference_records = {}
    for rep in range(reps):
        for share in (True, False):
            arm = _run_arm(share)
            best[share] = min(best[share], arm["wall_clock_s"])
            if rep == 0:
                reference_records[share] = arm["records"]

    mismatches = sum(
        1
        for shared, isolated in zip(
            _strip_timing(reference_records[True]),
            _strip_timing(reference_records[False]),
        )
        if shared != isolated
    )

    # Warm-cache contents after one shared sweep, for the record.
    caches = install_worker_caches(WorkerCaches())
    with tempfile.TemporaryDirectory() as directory:
        run_sweep(sweep_specs(), jobs=1, cache=ResultCache(directory), share_caches=True)
    cache_stats = caches.stats()

    shared_s, isolated_s = best[True], best[False]
    return {
        "schema": BENCH_SCHEMA,
        "reps": reps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "sweep": {
            "family": SWEEP_FAMILY,
            "seed": SWEEP_SEED,
            "cells": num_cells,
            "axis": "max_steps",
            "values": list(SWEEP_STEP_BUDGETS),
        },
        "gate": {"min_speedup": GATE_MIN_SPEEDUP},
        "shared_s": shared_s,
        "isolated_s": isolated_s,
        "shared_cells_per_s": num_cells / shared_s,
        "isolated_cells_per_s": num_cells / isolated_s,
        "speedup": isolated_s / shared_s if shared_s > 0 else None,
        "record_mismatches": mismatches,
        "worker_cache_stats": cache_stats,
    }


def _print_record(record: Dict) -> None:
    print_header("Fleet sweep: shared worker caches vs isolated cold starts")
    sweep = record["sweep"]
    print(
        f"{sweep['cells']} cells: {sweep['family']} seed {sweep['seed']}, "
        f"{sweep['axis']} in {sweep['values']}"
    )
    rows = [
        (
            "shared",
            f"{record['shared_s']:.2f}",
            f"{record['shared_cells_per_s']:.2f}",
        ),
        (
            "isolated",
            f"{record['isolated_s']:.2f}",
            f"{record['isolated_cells_per_s']:.2f}",
        ),
    ]
    print(format_table(("arm", "best wall clock (s)", "cells/s"), rows))
    print(
        f"speedup {record['speedup']:.2f}x, "
        f"{record['record_mismatches']} record mismatches"
    )
    paths = record["worker_cache_stats"]["paths"]
    models = record["worker_cache_stats"]["models"]
    print(
        f"warm caches after one shared sweep: paths {paths}, models {models}"
    )


# ------------------------------------------------------------------- pytest


def test_fleet_cache_sharing_gate(benchmark):
    """CI bench-smoke gate: >= 1.5x cells/sec shared vs isolated, records identical.

    Byte-identity is a hard zero — a mismatch on any attempt fails
    immediately.  The timing ratio gets up to three attempts (best-of-3
    interleaved sweeps each) before failing: shared CI runners can slow one
    process mid-run, and the retry filters that noise without weakening the
    bar the committed BENCH_fleet.json record documents.
    """
    attempts = []

    def measure_with_retry():
        for _ in range(3):
            record = measure_fleet(reps=3)
            assert record["record_mismatches"] == 0, (
                f"shared-cache records diverged from isolated on "
                f"{record['record_mismatches']} cells"
            )
            attempts.append(record)
            if record["speedup"] >= GATE_MIN_SPEEDUP:
                return record
        return max(attempts, key=lambda r: r["speedup"])

    record = run_once(benchmark, measure_with_retry)
    _print_record(record)
    assert record["speedup"] >= GATE_MIN_SPEEDUP, (
        f"fleet cache-sharing speedup {record['speedup']:.2f}x below the "
        f"{GATE_MIN_SPEEDUP:.1f}x gate on {len(attempts)} attempts"
    )


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure shared-vs-isolated sweep caching and write BENCH_fleet.json"
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_fleet(reps=args.reps)
    _print_record(record)

    if record["record_mismatches"]:
        print("\nrecord divergence — record not written")
        return 1
    if record["speedup"] < GATE_MIN_SPEEDUP:
        print(
            f"\nspeedup below {GATE_MIN_SPEEDUP:.1f}x "
            f"({record['speedup']:.2f}x) — record written anyway"
        )
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
