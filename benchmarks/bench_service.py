"""Controller-as-a-service benchmark: debounced vs fixed-epoch re-optimization.

The batch loop re-optimizes on every epoch whether demand moved or not; the
:class:`~repro.service.daemon.ControllerDaemon` debounces instead, running the
optimizer only when the measured demand drifts past a threshold (bounded by
min/max-interval hysteresis — see :mod:`repro.service.debounce`).  This
benchmark replays the same drifting Hurricane Electric trace through two
daemons that differ only in debounce policy:

* **fixed** — ``DebounceConfig.always()``, the daemon's emulation of the
  batch loop: one optimizer invocation per measurement;
* **debounced** — the default drift-threshold policy.

The acceptance gates are the service's whole value proposition: the
debounced daemon must invoke the optimizer at least 25% less often, while
the utility it actually delivers over the trace stays within 1% of the
fixed-epoch run — skipping calm epochs must be (nearly) free.

    PYTHONPATH=src python -m benchmarks.bench_service \
        --num-pops 31 --num-epochs 12 --output BENCH_service.json

The pytest entry point runs the same comparison at reduced scale inside the
CI bench-smoke job, so a regression in the debounce policy fails the build.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.dynamics.processes import RandomWalkProcess
from repro.experiments.scenarios import build_sweep_scenario
from repro.metrics.reporting import format_table
from repro.service.daemon import ControllerDaemon, TenantConfig
from repro.service.debounce import DebounceConfig
from repro.service.events import DecisionTelemetry, Event, MeasurementEvent
from repro.traffic.matrix import TrafficMatrix

#: Default location of the service benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Schema version of BENCH_service.json.
BENCH_SCHEMA = 1

#: The debounced daemon must save at least this fraction of optimizer
#: invocations relative to the fixed-epoch baseline.
MIN_REOPTIMIZATIONS_SAVED = 0.25

#: ... while delivering utility within this relative tolerance of it.
DELIVERED_UTILITY_RTOL = 0.01


def _replay_trace(
    scenario, matrices: List[TrafficMatrix], debounce: DebounceConfig
) -> Dict:
    """Feed *matrices* through one single-tenant daemon; summarize its trace."""

    async def run() -> Tuple[Dict[str, object], List[Event]]:
        daemon = ControllerDaemon()
        telemetry: List[Event] = []
        daemon.add_telemetry_listener(telemetry.append)
        await daemon.add_tenant(
            TenantConfig(
                name="bench",
                network=scenario.network,
                fubar_config=scenario.fubar_config,
                debounce=debounce,
            )
        )
        for epoch, matrix in enumerate(matrices):
            await daemon.submit(
                MeasurementEvent(tenant="bench", matrix=matrix, epoch=epoch)
            )
        await daemon.close()
        return daemon.tenant_stats("bench"), telemetry

    stats, telemetry = asyncio.run(run())
    decisions = [event for event in telemetry if isinstance(event, DecisionTelemetry)]
    records = [decision.record for decision in decisions]
    delivered = [float(record["delivered_utility"]) for record in records]
    churn = 0
    for record in records:
        install = record["install"]
        assert isinstance(install, dict)
        churn += (
            int(install["rules_added"])
            + int(install["rules_removed"])
            + int(install["rules_updated"])
        )
    return {
        "debounce": {
            "drift_threshold": debounce.drift_threshold,
            "min_interval": debounce.min_interval,
            "max_interval": debounce.max_interval,
            "metric": debounce.metric,
        },
        "epochs": int(stats["epochs"]),  # type: ignore[call-overload]
        "reoptimizations": int(stats["reoptimizations"]),  # type: ignore[call-overload]
        "skips": int(stats["skips"]),  # type: ignore[call-overload]
        "actions": [decision.action for decision in decisions],
        "mean_delivered_utility": sum(delivered) / len(delivered) if delivered else 0.0,
        "total_model_evaluations": sum(
            int(record["model_evaluations"]) for record in records
        ),
        "total_rule_churn": churn,
        "epoch_records": records,
    }


def measure_service_debounce(
    seed: int = BENCH_SEED,
    num_epochs: int = 12,
    num_pops: Optional[int] = None,
    provisioning_ratio: float = 0.75,
    step_std: float = 0.08,
    drift_threshold: float = 0.15,
    min_interval: int = 1,
    max_interval: int = 12,
    max_steps: Optional[int] = 60,
) -> Dict:
    """Replay one drifting trace through a debounced and a fixed-epoch daemon.

    Both daemons see the *identical* measurement sequence (the random walk is
    materialized once up front), so every difference in the summaries is the
    debounce policy.  ``step_std`` defaults below the drift threshold so the
    walk takes a few epochs to accumulate enough drift — the regime where
    debouncing pays.
    """
    scenario = build_sweep_scenario(
        topology="hurricane-electric",
        num_pops=num_pops,
        provisioning_ratio=provisioning_ratio,
        seed=seed,
        max_steps=max_steps,
    )
    process = RandomWalkProcess(scenario.traffic_matrix, seed=seed, step_std=step_std)
    matrices = [process.matrix_at(epoch) for epoch in range(num_epochs)]

    debounced = _replay_trace(
        scenario,
        matrices,
        DebounceConfig(
            drift_threshold=drift_threshold,
            min_interval=min_interval,
            max_interval=max_interval,
        ),
    )
    fixed = _replay_trace(scenario, matrices, DebounceConfig.always())

    fixed_reopt = fixed["reoptimizations"]
    debounced_reopt = debounced["reoptimizations"]
    fixed_utility = fixed["mean_delivered_utility"]
    debounced_utility = debounced["mean_delivered_utility"]
    return {
        "schema": BENCH_SCHEMA,
        "scenario": dict(scenario.summary()),
        "seed": seed,
        "num_epochs": num_epochs,
        "step_std": step_std,
        "max_steps": max_steps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "runs": {"debounced": debounced, "fixed": fixed},
        "comparison": {
            "fixed_reoptimizations": fixed_reopt,
            "debounced_reoptimizations": debounced_reopt,
            "reoptimizations_saved_fraction": (
                1.0 - debounced_reopt / fixed_reopt if fixed_reopt else None
            ),
            "fixed_mean_delivered_utility": fixed_utility,
            "debounced_mean_delivered_utility": debounced_utility,
            "delivered_utility_relative_gap": (
                abs(debounced_utility - fixed_utility) / abs(fixed_utility)
                if fixed_utility
                else None
            ),
            "fixed_total_model_evaluations": fixed["total_model_evaluations"],
            "debounced_total_model_evaluations": debounced["total_model_evaluations"],
            "fixed_total_rule_churn": fixed["total_rule_churn"],
            "debounced_total_rule_churn": debounced["total_rule_churn"],
        },
    }


def _assert_acceptance(record: Dict) -> None:
    """The acceptance gates, shared by pytest and the CLI."""
    comparison = record["comparison"]
    saved = comparison["reoptimizations_saved_fraction"]
    assert saved is not None and saved >= MIN_REOPTIMIZATIONS_SAVED, (
        "debouncing saved too few optimizer invocations: "
        f"{saved} < {MIN_REOPTIMIZATIONS_SAVED} "
        f"({comparison['debounced_reoptimizations']} vs "
        f"{comparison['fixed_reoptimizations']})"
    )
    gap = comparison["delivered_utility_relative_gap"]
    assert gap is not None and gap <= DELIVERED_UTILITY_RTOL, (
        "debounced daemon gave up too much delivered utility: "
        f"relative gap {gap} > {DELIVERED_UTILITY_RTOL} "
        f"({comparison['debounced_mean_delivered_utility']} vs "
        f"{comparison['fixed_mean_delivered_utility']})"
    )


def _print_record(record: Dict) -> None:
    print_header("Controller as a service: debounced vs fixed-epoch daemon")
    rows = []
    for policy in ("fixed", "debounced"):
        run = record["runs"][policy]
        rows.append(
            (
                policy,
                run["epochs"],
                run["reoptimizations"],
                run["skips"],
                run["total_model_evaluations"],
                f"{run['mean_delivered_utility']:.4f}",
                run["total_rule_churn"],
            )
        )
    print(
        format_table(
            (
                "policy",
                "epochs",
                "reoptimized",
                "skipped",
                "model evals",
                "delivered",
                "churn",
            ),
            rows,
        )
    )
    comparison = record["comparison"]
    saved = comparison["reoptimizations_saved_fraction"]
    gap = comparison["delivered_utility_relative_gap"]
    print(
        f"\ndebouncing saves {saved:.0%} of optimizer invocations "
        f"({comparison['debounced_reoptimizations']} vs "
        f"{comparison['fixed_reoptimizations']}) at a delivered-utility gap "
        f"of {gap:.3%}"
    )
    print("decision trace (debounced): " + " ".join(record["runs"]["debounced"]["actions"]))


# ------------------------------------------------------------------- pytest


def test_service_debounce(benchmark):
    """CI smoke gate: debouncing cuts optimizer work without losing utility."""
    record = run_once(
        benchmark, measure_service_debounce, num_epochs=8, max_steps=40
    )
    _print_record(record)
    _assert_acceptance(record)


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the service daemon's debounce policy and write "
        "BENCH_service.json"
    )
    parser.add_argument(
        "--num-pops",
        type=int,
        default=None,
        help="POP count (defaults to the scenario default; 31 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--num-epochs",
        type=int,
        default=12,
        help="measurements replayed through each daemon (default 12)",
    )
    parser.add_argument(
        "--step-std",
        type=float,
        default=0.08,
        help="random-walk drift step size (default 0.08)",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=0.15,
        help="debounce drift threshold (default 0.15)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=60,
        help="optimizer step budget per cycle (default 60)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_service_debounce(
        seed=args.seed,
        num_epochs=args.num_epochs,
        num_pops=args.num_pops,
        step_std=args.step_std,
        drift_threshold=args.drift_threshold,
        max_steps=args.max_steps,
    )
    _print_record(record)
    _assert_acceptance(record)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
