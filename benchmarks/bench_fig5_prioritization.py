"""Experiment E5 — Figure 5: prioritizing large flows.

Reruns the underprovisioned case with large-transfer aggregates weighted up
in the optimization objective.  Paper expectation: the utility of large flows
grows faster and reaches its peak, link usage rises slightly, and the overall
utility changes very little (the loss on small flows is offset by the gain on
large ones).
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.figures import run_figure4, run_figure5
from repro.metrics.reporting import format_table, format_utility_timeline


def test_figure5_large_flow_prioritization(benchmark):
    def run_both():
        return run_figure4(seed=BENCH_SEED), run_figure5(seed=BENCH_SEED)

    unprioritized, prioritized = run_once(benchmark, run_both)

    print_header("Figure 5: underprovisioned case with large flows prioritized")
    print("\nPrioritized run timeline:")
    print(format_utility_timeline(prioritized.plan.result.recorder))
    rows = [
        (
            "default weights",
            f"{unprioritized.final_utility:.4f}",
            f"{unprioritized.large_flow_utility:.4f}",
            f"{unprioritized.summary()['final_total_utilization']:.4f}",
        ),
        (
            "large flows prioritized",
            f"{prioritized.final_utility:.4f}",
            f"{prioritized.large_flow_utility:.4f}",
            f"{prioritized.summary()['final_total_utilization']:.4f}",
        ),
    ]
    print("\nComparison (Figure 4 vs Figure 5):")
    print(format_table(("configuration", "overall_utility", "large_flow_utility", "utilization"), rows))

    # Shape assertions from the paper.
    assert prioritized.large_flow_utility >= unprioritized.large_flow_utility - 1e-9
    assert prioritized.large_flow_utility >= 0.9
    # "overall utility has not changed a great deal"
    assert abs(prioritized.final_utility - unprioritized.final_utility) < 0.1
