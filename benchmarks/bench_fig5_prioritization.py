"""Experiment E5 — Figure 5: prioritizing large flows.

Reruns the underprovisioned case with large-transfer aggregates weighted up
in the optimization objective, using the runner's ``he-prioritized`` family
against its unweighted ``he-underprovisioned`` sibling.  Paper expectation:
the utility of large flows grows faster and reaches its peak, link usage
rises slightly, and the overall utility changes very little (the loss on
small flows is offset by the gain on large ones).
"""

import pytest

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.metrics.reporting import format_table, format_utility_timeline
from repro.runner.engine import evaluate_cell
from repro.runner.spec import CellSpec
from repro.traffic.classes import LARGE_TRANSFER


def test_figure5_large_flow_prioritization(benchmark):
    def run_both():
        return (
            evaluate_cell(CellSpec("he-underprovisioned", seed=BENCH_SEED)),
            evaluate_cell(CellSpec("he-prioritized", seed=BENCH_SEED)),
        )

    unprioritized, prioritized = run_once(benchmark, run_both)
    large_default = unprioritized.plan.result.model_result.class_utility(LARGE_TRANSFER)
    large_prioritized = prioritized.plan.result.model_result.class_utility(LARGE_TRANSFER)
    if large_default is None or large_prioritized is None:
        pytest.skip(
            f"seed {BENCH_SEED} drew no large-transfer aggregates; "
            "the Figure 5 comparison is meaningless at this seed"
        )

    print_header("Figure 5: underprovisioned case with large flows prioritized")
    print("\nPrioritized run timeline:")
    print(format_utility_timeline(prioritized.plan.result.recorder))
    rows = [
        (
            "default weights",
            f"{unprioritized.final_utility:.4f}",
            f"{large_default:.4f}",
            f"{unprioritized.plan.result.model_result.total_utilization():.4f}",
        ),
        (
            "large flows prioritized",
            f"{prioritized.final_utility:.4f}",
            f"{large_prioritized:.4f}",
            f"{prioritized.plan.result.model_result.total_utilization():.4f}",
        ),
    ]
    print("\nComparison (Figure 4 vs Figure 5):")
    print(format_table(("configuration", "overall_utility", "large_flow_utility", "utilization"), rows))

    # Shape assertions from the paper.
    assert large_prioritized >= large_default - 1e-9
    assert large_prioritized >= 0.9
    # "overall utility has not changed a great deal"
    assert abs(prioritized.final_utility - unprioritized.final_utility) < 0.1
