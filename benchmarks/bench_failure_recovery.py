"""Failure-recovery benchmark: warm reroute vs cold restart across a link cut.

The survivability counterpart of ``bench_dynamic_loop``: the control loop
runs on *static* traffic — so the only disturbance is the topology — and a
link of the Hurricane Electric core is cut mid-run.  The warm loop reroutes
by pruning the deployed solution (surviving path splits kept, dead-path
flows re-apportioned, paths regenerated only for stranded aggregates); the
cold loop restarts every cycle from shortest paths.  Two gates:

* **post-failure model evaluations** — the warm reroute must need fewer
  evaluations per post-failure cycle than the cold restart (the whole point
  of pruning instead of restarting);
* **delivered utility within 1%** — the cheaper reroute must not trade
  solution quality away.

    PYTHONPATH=src python -m benchmarks.bench_failure_recovery \
        --num-pops 31 --num-epochs 4 --output BENCH_failure_recovery.json

The pytest entry point runs the same comparison at reduced scale inside the
CI bench-smoke job, so a regression in failure recovery fails the build.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, Optional

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.dynamics.loop import ControlLoopConfig, format_epoch_table, run_control_loop
from repro.dynamics.processes import StaticProcess
from repro.experiments.scenarios import build_sweep_scenario
from repro.failures.schedule import FailureSchedule, undirected_link_pairs
from repro.metrics.reporting import format_table

#: Default location of the failure-recovery benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_failure_recovery.json"

#: Schema version of BENCH_failure_recovery.json.
BENCH_SCHEMA = 1

#: Warm reroute and cold restart must agree on delivered utility within this
#: relative tolerance (the reroute-quality gate).
DELIVERED_UTILITY_RTOL = 0.01


def _run_loop(scenario, schedule, num_epochs: int, warm_start: bool) -> Dict:
    result = run_control_loop(
        scenario.network,
        StaticProcess(scenario.traffic_matrix),
        fubar_config=scenario.fubar_config,
        loop_config=ControlLoopConfig(num_epochs=num_epochs, warm_start=warm_start),
        failures=schedule,
    )
    record = dict(result.summary())
    record["epochs"] = [epoch.as_dict() for epoch in result.records]
    return record


def _post_failure_evals(record: Dict, failure_epoch: int) -> float:
    """Mean optimizer model evaluations over the degraded cycles."""
    epochs = [e for e in record["epochs"] if e["epoch"] >= failure_epoch]
    return sum(e["model_evaluations"] for e in epochs) / len(epochs)


def measure_failure_recovery(
    seed: int = BENCH_SEED,
    num_epochs: int = 4,
    num_pops: Optional[int] = None,
    provisioning_ratio: float = 0.75,
    failed_link: int = 1,
    failure_epoch: int = 1,
    max_steps: Optional[int] = None,
) -> Dict:
    """Compare warm reroute vs cold restart across one link cut.

    The underprovisioned regime keeps congestion alive, so a cold restart
    genuinely re-optimizes every cycle while the warm reroute only repairs
    what the failure broke.  ``max_steps`` bounds each cycle's committed
    steps for affordable full-scale records (mirroring
    ``bench_dynamic_loop``); the utility-equivalence gate still applies —
    both modes are capped alike.
    """
    if not 0 < failure_epoch < num_epochs:
        raise ValueError(
            f"failure_epoch {failure_epoch} must fall inside the run's "
            f"{num_epochs} epochs (and leave a healthy epoch 0 as reference)"
        )
    scenario = build_sweep_scenario(
        topology="hurricane-electric",
        num_pops=num_pops,
        provisioning_ratio=provisioning_ratio,
        seed=seed,
        max_steps=max_steps,
    )
    pairs = undirected_link_pairs(scenario.network)
    target = pairs[failed_link % len(pairs)]
    schedule = FailureSchedule.single_link(target, epoch=failure_epoch)

    runs = {
        "warm": _run_loop(scenario, schedule, num_epochs, warm_start=True),
        "cold": _run_loop(scenario, schedule, num_epochs, warm_start=False),
    }

    warm_evals = _post_failure_evals(runs["warm"], failure_epoch)
    cold_evals = _post_failure_evals(runs["cold"], failure_epoch)
    return {
        "schema": BENCH_SCHEMA,
        "scenario": dict(scenario.summary()),
        "seed": seed,
        "num_epochs": num_epochs,
        "failed_link": list(target),
        "failure_epoch": failure_epoch,
        "max_steps": max_steps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "runs": runs,
        "comparison": {
            "warm_post_failure_evaluations_per_cycle": warm_evals,
            "cold_post_failure_evaluations_per_cycle": cold_evals,
            "evaluations_saved_fraction": (
                1.0 - warm_evals / cold_evals if cold_evals else None
            ),
            "warm_mean_delivered_utility": runs["warm"]["mean_delivered_utility"],
            "cold_mean_delivered_utility": runs["cold"]["mean_delivered_utility"],
            "warm_recovery_epochs": runs["warm"].get("recovery_epochs"),
            "cold_recovery_epochs": runs["cold"].get("recovery_epochs"),
            "warm_rules_invalidated": runs["warm"].get("rules_invalidated", 0),
            "warm_total_rule_churn": runs["warm"]["total_rule_churn"],
            "cold_total_rule_churn": runs["cold"]["total_rule_churn"],
            "total_stranded_demand_bps": runs["warm"].get(
                "total_stranded_demand_bps", 0.0
            ),
        },
    }


def _assert_acceptance(record: Dict) -> None:
    """The acceptance gates, shared by pytest and the CLI."""
    comparison = record["comparison"]
    assert comparison["warm_post_failure_evaluations_per_cycle"] <= (
        comparison["cold_post_failure_evaluations_per_cycle"]
    ), "warm reroute needed more model evaluations than a cold restart"
    warm = comparison["warm_mean_delivered_utility"]
    cold = comparison["cold_mean_delivered_utility"]
    assert abs(warm - cold) <= DELIVERED_UTILITY_RTOL * max(abs(cold), 1e-12), (
        "warm reroute traded delivered utility away vs the cold restart: "
        f"{warm} vs {cold}"
    )


def _print_record(record: Dict) -> None:
    print_header("Failure recovery: warm reroute vs cold restart")
    rows = []
    for mode, run in record["runs"].items():
        rows.append(
            (
                mode,
                f"{run['mean_model_evaluations_per_cycle']:.1f}",
                run["total_steps"],
                f"{run['mean_delivered_utility']:.4f}",
                run["total_rule_churn"],
                run.get("rules_invalidated", 0),
                (
                    str(run.get("recovery_epochs"))
                    if run.get("recovery_epochs") is not None
                    else "n/a"
                ),
            )
        )
    print(
        format_table(
            (
                "start",
                "evals/cycle",
                "steps",
                "delivered",
                "churn",
                "invalidated",
                "recovery",
            ),
            rows,
        )
    )
    comparison = record["comparison"]
    saved = comparison["evaluations_saved_fraction"]
    print(
        f"\nwarm reroute saves {saved:.0%} of post-failure model evaluations "
        f"({comparison['warm_post_failure_evaluations_per_cycle']:.1f} vs "
        f"{comparison['cold_post_failure_evaluations_per_cycle']:.1f} per cycle) "
        f"after cutting {'–'.join(record['failed_link'])}"
    )
    print("\nper-epoch trajectory (warm reroute):")
    print(format_epoch_table(record["runs"]["warm"]["epochs"]))


# ------------------------------------------------------------------- pytest


def test_failure_recovery_warm_reroute(benchmark):
    """CI smoke gate: warm reroute cheaper than cold restart, equal utility."""
    record = run_once(benchmark, measure_failure_recovery, num_epochs=4)
    _print_record(record)
    _assert_acceptance(record)


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure failure recovery and write BENCH_failure_recovery.json"
    )
    parser.add_argument(
        "--num-pops",
        type=int,
        default=None,
        help="POP count (defaults to the scenario default; 31 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--num-epochs",
        type=int,
        default=4,
        help="control-loop cycles per run (default 4)",
    )
    parser.add_argument(
        "--failed-link",
        type=int,
        default=1,
        help="undirected link-pair index to cut (default 1)",
    )
    parser.add_argument(
        "--failure-epoch",
        type=int,
        default=1,
        help="epoch at which the link goes down (default 1)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="optimizer step budget per cycle (bounds full-scale wall clock)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_failure_recovery(
        seed=args.seed,
        num_epochs=args.num_epochs,
        num_pops=args.num_pops,
        failed_link=args.failed_link,
        failure_epoch=args.failure_epoch,
        max_steps=args.max_steps,
    )
    _print_record(record)
    _assert_acceptance(record)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
