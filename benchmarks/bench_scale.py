"""Scaling benchmark — batched candidate scoring vs per-move solves (ISSUE 6).

The optimizer's inner loop scores every candidate move of a congested link;
at internet scale that scoring dominates wall clock.  This benchmark builds
the hot-path workload exactly as :func:`repro.core.step._best_move_incremental`
does — one compiled base, one ``move_delta`` patch per candidate — and times
the two scoring paths against each other on tiered hierarchical topologies
of increasing size:

* **per-move** — ``compile_patched`` + ``solve`` + ``weighted_utility`` per
  candidate (the ``use_batched_scorer=False`` branch), and
* **batched** — one :class:`~repro.trafficmodel.compiled.BatchedCandidateScorer`
  scoring the same candidates through stacked ``solve_batched`` calls.

The two paths are *bitwise* equivalent (see
``tests/test_batched_scorer.py``), so the benchmark hard-fails on any score
drift — the recorded ``drift`` is the count of candidates whose scores
differ at all, and must be zero.  Regenerate the committed record with:

    PYTHONPATH=src python -m benchmarks.bench_scale --output BENCH_scale.json

The pytest entry point is the CI bench-smoke scale gate: on the 200-node
tiered seed the batched scorer must reach >= 3x the per-move evals/sec with
zero drift.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.core.state import AllocationState, build_path_sets
from repro.core.step import _candidate_moves
from repro.experiments.tiered import build_tiered_scenario
from repro.metrics.reporting import format_table
from repro.paths.generator import PathGenerator
from repro.trafficmodel.compiled import BatchedCandidateScorer
from repro.trafficmodel.waterfill import TrafficModel

#: Default location of the scaling benchmark record (repo root).
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

#: Schema version of BENCH_scale.json.
BENCH_SCHEMA = 1

#: Node counts measured by default (all tiered-continental, one seed).
#: Smaller tiered instances are well provisioned — congested links exist but
#: their bundles have no alternative paths worth testing — so the curve
#: starts where candidate scoring actually has work to batch.
DEFAULT_NODE_COUNTS = (200, 400, 800)

#: The CI gate: batched evals/sec over per-move evals/sec at 200 nodes.
GATE_NODE_COUNT = 200
GATE_MIN_SPEEDUP = 3.0


def build_scoring_workload(
    num_nodes: int, seed: int = BENCH_SEED, size: str = "continental"
) -> Dict:
    """The hot-path inputs of one optimizer step on a tiered topology.

    Mirrors ``_best_move_incremental``: evaluate the initial allocation,
    take the most congested link, enumerate its candidate moves, and turn
    each into the ``move_delta`` patch the scorer consumes.
    """
    scenario = build_tiered_scenario(
        size=size, num_nodes=num_nodes, seed=seed, max_steps=6
    )
    network = scenario.network
    config = scenario.fubar_config
    generator = PathGenerator(network)
    state = AllocationState.initial(
        network, scenario.traffic_matrix, generator
    )
    model = TrafficModel(network)
    result = model.evaluate(state.bundles())
    path_sets = build_path_sets(network, state)
    # The first congested link that actually yields candidate moves (small
    # topologies can have congested links whose bundles have nowhere to go).
    deltas: List = []
    link_id = None
    for candidate_link in result.congested_links:
        deltas = [
            state.move_delta(
                bundle.aggregate_key, bundle.path, candidate, num_to_move
            )
            for bundle, candidate, num_to_move in _candidate_moves(
                candidate_link, state, path_sets, generator, config, result, 0
            )
        ]
        if deltas:
            link_id = candidate_link
            break
    if not deltas:
        raise RuntimeError(
            f"tiered scenario ({num_nodes} nodes, seed {seed}) yields no "
            "candidate moves on any congested link; pick a different seed"
        )
    engine = model.engine
    return {
        "scenario": scenario,
        "network": network,
        "config": config,
        "engine": engine,
        "compiled_base": engine.compile(state.bundles()),
        "deltas": deltas,
        "link_id": link_id,
    }


def _score_per_move(workload: Dict) -> List[float]:
    engine = workload["engine"]
    base = workload["compiled_base"]
    weights = workload["config"].priority_weights
    scores: List[float] = []
    for delta in workload["deltas"]:
        patched = engine.compile_patched(base, delta)
        solution = engine.solve(patched)
        scores.append(engine.weighted_utility(patched, solution.rates, weights))
    return scores


def _score_batched(workload: Dict) -> List[float]:
    scorer = BatchedCandidateScorer(
        workload["engine"],
        workload["compiled_base"],
        workload["config"].priority_weights,
    )
    return scorer.score(workload["deltas"])


def _best_of_interleaved(workload: Dict, reps: int) -> tuple:
    """Best-of-*reps* wall clock of each scoring pass, interleaved.

    Alternating the two measurements inside every repetition means machine
    load that drifts over the run hits both paths equally, keeping the
    reported *ratio* stable even when absolute timings wander.
    """
    best_per_move = best_batched = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        _score_per_move(workload)
        best_per_move = min(best_per_move, time.perf_counter() - started)
        started = time.perf_counter()
        _score_batched(workload)
        best_batched = min(best_batched, time.perf_counter() - started)
    return best_per_move, best_batched


def measure_hot_path(
    num_nodes: int, seed: int = BENCH_SEED, reps: int = 5
) -> Dict:
    """Time both scoring paths on one tiered topology and check for drift."""
    workload = build_scoring_workload(num_nodes, seed=seed)
    num_candidates = len(workload["deltas"])

    per_move_scores = _score_per_move(workload)
    batched_scores = _score_batched(workload)
    # Bitwise: any difference at all counts as drift.
    drift = sum(
        1 for a, b in zip(per_move_scores, batched_scores) if a != b
    ) + abs(len(per_move_scores) - len(batched_scores))

    per_move_s, batched_s = _best_of_interleaved(workload, reps)
    return {
        "num_nodes": num_nodes,
        "actual_nodes": len(workload["network"].node_names),
        "num_links": len(workload["network"].links),
        "num_candidates": num_candidates,
        "seed": seed,
        "per_move_ms": per_move_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "per_move_evals_per_s": num_candidates / per_move_s,
        "batched_evals_per_s": num_candidates / batched_s,
        "speedup": per_move_s / batched_s if batched_s > 0 else None,
        "drift": drift,
    }


def measure_scale(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    seed: int = BENCH_SEED,
    reps: int = 5,
) -> Dict:
    """The full BENCH_scale.json record: evals/sec vs node count."""
    return {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "reps": reps,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "gate": {
            "node_count": GATE_NODE_COUNT,
            "min_speedup": GATE_MIN_SPEEDUP,
        },
        "points": [
            measure_hot_path(n, seed=seed, reps=reps) for n in node_counts
        ],
    }


def _print_record(record: Dict) -> None:
    print_header("Batched candidate scoring vs per-move solves (tiered)")
    rows = [
        (
            point["actual_nodes"],
            point["num_links"],
            point["num_candidates"],
            f"{point['per_move_evals_per_s']:.0f}",
            f"{point['batched_evals_per_s']:.0f}",
            f"{point['speedup']:.2f}x",
            point["drift"],
        )
        for point in record["points"]
    ]
    print(
        format_table(
            ("nodes", "links", "cands", "per-move ev/s", "batched ev/s", "speedup", "drift"),
            rows,
        )
    )


# ------------------------------------------------------------------- pytest


def test_batched_scorer_scale_gate(benchmark):
    """CI bench-smoke gate: >= 3x evals/sec at 200 nodes, zero drift.

    Drift is a hard zero — any attempt observing it fails immediately.  The
    timing ratio gets up to three attempts (best-of-7 interleaved passes
    each) before failing: shared CI runners can slow one process mid-run,
    and the retry filters that noise without weakening the bar the committed
    BENCH_scale.json record documents.
    """
    attempts = []

    def measure_with_retry():
        for _ in range(3):
            point = measure_hot_path(GATE_NODE_COUNT, seed=BENCH_SEED, reps=7)
            assert point["drift"] == 0, (
                f"batched scorer drifted from per-move on "
                f"{point['drift']} candidates"
            )
            attempts.append(point)
            if point["speedup"] >= GATE_MIN_SPEEDUP:
                return point
        return max(attempts, key=lambda p: p["speedup"])

    point = run_once(benchmark, measure_with_retry)
    _print_record({"points": [point]})
    assert point["speedup"] >= GATE_MIN_SPEEDUP, (
        f"batched scorer speedup {point['speedup']:.2f}x below the "
        f"{GATE_MIN_SPEEDUP:.1f}x gate on {len(attempts)} attempts"
    )


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure batched-vs-per-move scoring and write BENCH_scale.json"
    )
    parser.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=list(DEFAULT_NODE_COUNTS),
        help="tiered-continental node counts to measure",
    )
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--reps", type=int, default=5, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help=f"where to write the JSON record (default {BENCH_JSON_PATH})",
    )
    args = parser.parse_args(argv)

    record = measure_scale(args.nodes, seed=args.seed, reps=args.reps)
    _print_record(record)

    gate_points = [
        p for p in record["points"] if p["num_nodes"] == GATE_NODE_COUNT
    ]
    for point in record["points"]:
        if point["drift"]:
            print(f"\nDRIFT at {point['num_nodes']} nodes — record not written")
            return 1
    if gate_points and gate_points[0]["speedup"] < GATE_MIN_SPEEDUP:
        print(
            f"\ngate point below {GATE_MIN_SPEEDUP:.1f}x "
            f"({gate_points[0]['speedup']:.2f}x) — record written anyway"
        )
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
