"""Experiment E4 — Figure 4: a run of the underprovisioned case.

Same series as Figure 3 but with 75 Mbps links.  Paper expectation: FUBAR
still improves on shortest-path routing, but the upper bound is unreachable
and congestion cannot be fully eliminated; large flows are sacrificed for the
numerous small ones.
"""

from benchmarks.conftest import BENCH_SEED, print_header, run_once
from repro.experiments.figures import run_figure3, run_figure4
from repro.metrics.reporting import format_table, format_utility_timeline


def test_figure4_underprovisioned_case(benchmark):
    result = run_once(benchmark, run_figure4, seed=BENCH_SEED)

    print_header("Figure 4: underprovisioned case (75 Mbps links)")
    print(result.scenario.summary())
    print("\nOptimization timeline:")
    print(format_utility_timeline(result.plan.result.recorder))
    summary = result.summary()
    print("\nReference lines:")
    print(
        format_table(
            ("series", "value"),
            [
                ("shortest path (lower bound)", f"{summary['shortest_path_utility']:.4f}"),
                ("FUBAR final", f"{summary['fubar_utility']:.4f}"),
                ("upper bound", f"{summary['upper_bound_utility']:.4f}"),
                ("large flows final", f"{summary['large_flow_utility']:.4f}"),
                ("actual utilization", f"{summary['final_total_utilization']:.4f}"),
                ("demanded utilization", f"{summary['final_demanded_utilization']:.4f}"),
            ],
        )
    )

    # Shape assertions from the paper: better than shortest path, but the
    # bound is unreachable and congestion remains.
    assert result.final_utility >= result.shortest_path_utility - 1e-9
    assert result.final_utility < result.upper_bound
    assert summary["congested_links_remaining"] >= 1
    assert summary["final_demanded_utilization"] > summary["final_total_utilization"]


def test_figure4_vs_figure3_contrast(benchmark):
    """The provisioned case must end closer to its bound than the underprovisioned one."""
    def run_both():
        return run_figure3(seed=BENCH_SEED), run_figure4(seed=BENCH_SEED)

    provisioned, underprovisioned = run_once(benchmark, run_both)
    gap_provisioned = provisioned.upper_bound - provisioned.final_utility
    gap_underprovisioned = underprovisioned.upper_bound - underprovisioned.final_utility
    print_header("Figure 3 vs Figure 4 contrast")
    print(
        f"gap to bound: provisioned={gap_provisioned:.4f} "
        f"underprovisioned={gap_underprovisioned:.4f}"
    )
    assert gap_underprovisioned >= gap_provisioned - 1e-9
