"""Experiment E4 — Figure 4: a run of the underprovisioned case.

Same series as Figure 3 but with 75 Mbps links, evaluated through the
scenario-sweep runner so every baseline rides along.  Paper expectation:
FUBAR still improves on shortest-path routing, but the upper bound is
unreachable and congestion cannot be fully eliminated; large flows are
sacrificed for the numerous small ones.
"""

from benchmarks.conftest import BENCH_SEED, format_optional, print_header, run_once
from repro.metrics.reporting import format_table, format_utility_timeline
from repro.runner.engine import evaluate_cell
from repro.runner.report import format_sweep_report
from repro.runner.spec import CellSpec
from repro.traffic.classes import LARGE_TRANSFER


def test_figure4_underprovisioned_case(benchmark):
    spec = CellSpec("he-underprovisioned", seed=BENCH_SEED)
    outcome = run_once(benchmark, evaluate_cell, spec)

    print_header("Figure 4: underprovisioned case (75 Mbps links)")
    print(outcome.scenario.summary())
    print("\nOptimization timeline:")
    print(format_utility_timeline(outcome.plan.result.recorder))
    print("\nComparison against every baseline (runner cell):")
    print(format_sweep_report([outcome.to_record()]))
    model = outcome.plan.result.model_result
    print("\nUtilization:")
    print(
        format_table(
            ("series", "value"),
            [
                ("large flows final", format_optional(model.class_utility(LARGE_TRANSFER))),
                ("actual utilization", f"{model.total_utilization():.4f}"),
                ("demanded utilization", f"{model.demanded_utilization():.4f}"),
            ],
        )
    )

    # Shape assertions from the paper: better than shortest path, but the
    # bound is unreachable and congestion remains.
    assert outcome.final_utility >= outcome.shortest_path_utility - 1e-9
    assert outcome.final_utility < outcome.upper_bound
    assert len(model.congested_links) >= 1
    assert model.demanded_utilization() > model.total_utilization()


def test_figure4_vs_figure3_contrast(benchmark):
    """The provisioned case must end closer to its bound than the underprovisioned one."""
    def run_both():
        return (
            evaluate_cell(CellSpec("he-provisioned", seed=BENCH_SEED)),
            evaluate_cell(CellSpec("he-underprovisioned", seed=BENCH_SEED)),
        )

    provisioned, underprovisioned = run_once(benchmark, run_both)
    gap_provisioned = provisioned.upper_bound - provisioned.final_utility
    gap_underprovisioned = underprovisioned.upper_bound - underprovisioned.final_utility
    print_header("Figure 3 vs Figure 4 contrast")
    print(
        f"gap to bound: provisioned={gap_provisioned:.4f} "
        f"underprovisioned={gap_underprovisioned:.4f}"
    )
    assert gap_underprovisioned >= gap_provisioned - 1e-9
