"""Micro-benchmark of the traffic model (the optimizer's hot loop).

Every candidate move the optimizer considers costs one traffic-model
evaluation, so the model's speed determines how large a network FUBAR can
optimize offline.  This benchmark times a single evaluation on a
shortest-path allocation of the full 31-POP core — roughly the workload the
optimizer runs hundreds to thousands of times per optimization.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.core.state import AllocationState
from repro.topology.hurricane_electric import provisioned_core
from repro.traffic.generators import paper_traffic_matrix
from repro.trafficmodel.compiled import CompiledTrafficModel
from repro.trafficmodel.waterfill import TrafficModel, reference_evaluate


@pytest.fixture(scope="module")
def full_core_bundles():
    network = provisioned_core()
    matrix = paper_traffic_matrix(network, seed=0)
    state = AllocationState.initial(network, matrix)
    return network, state.bundles()


def test_traffic_model_evaluation_full_core(benchmark, full_core_bundles):
    network, bundles = full_core_bundles
    model = TrafficModel(network)

    result = benchmark(model.evaluate, bundles)

    print_header("Traffic model micro-benchmark (31-POP core, all-pairs shortest paths)")
    print(
        f"bundles: {len(bundles)}, links: {network.num_links}, "
        f"congested links: {len(result.congested_links)}, "
        f"network utility: {result.network_utility():.4f}"
    )
    assert len(result.outcomes) == len(bundles)


def test_reference_model_evaluation_full_core(benchmark, full_core_bundles):
    """The pre-compiled-engine baseline: full rebuild on every evaluation."""
    network, bundles = full_core_bundles

    result = benchmark(reference_evaluate, network, bundles)

    print_header("Reference (event-driven, full rebuild) micro-benchmark")
    print(f"bundles: {len(bundles)}, network utility: {result.network_utility():.4f}")
    assert len(result.outcomes) == len(bundles)


def test_compiled_patched_evaluation_full_core(benchmark, full_core_bundles):
    """The optimizer's hot path: patch one bundle, solve, score."""
    network, bundles = full_core_bundles
    engine = CompiledTrafficModel(network)
    compiled = engine.compile(bundles)
    sample = bundles[0]
    patch = {
        (sample.aggregate_key, sample.path): sample.with_num_flows(
            max(1, sample.num_flows // 2)
        )
    }

    def candidate():
        patched = engine.compile_patched(compiled, patch)
        solution = engine.solve(patched)
        return engine.weighted_utility(patched, solution.rates)

    score = benchmark(candidate)

    # Equivalence gate: the compiled engine must match the reference model.
    reference = reference_evaluate(network, bundles)
    result = engine.evaluate(bundles)
    rates_ref = np.asarray([o.rate_bps for o in reference.outcomes])
    rates_new = np.asarray([o.rate_bps for o in result.outcomes])
    np.testing.assert_allclose(rates_new, rates_ref, rtol=1e-9, atol=1e-6)
    assert all(
        a.satisfied == b.satisfied and a.bottleneck_link == b.bottleneck_link
        for a, b in zip(reference.outcomes, result.outcomes)
    )

    print_header("Compiled engine (patched candidate) micro-benchmark")
    print(f"bundles: {len(bundles)}, candidate score: {score:.4f}")


def test_shortest_path_allocation_build_full_core(benchmark):
    network = provisioned_core()
    matrix = paper_traffic_matrix(network, seed=0)

    state = benchmark(AllocationState.initial, network, matrix)

    print_header("Initial allocation build (31-POP core)")
    print(f"aggregates: {len(state)}, bundles: {len(state.bundles())}")
    assert state.total_flows() == matrix.total_flows
