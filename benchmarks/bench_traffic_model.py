"""Micro-benchmark of the traffic model (the optimizer's hot loop).

Every candidate move the optimizer considers costs one traffic-model
evaluation, so the model's speed determines how large a network FUBAR can
optimize offline.  This benchmark times a single evaluation on a
shortest-path allocation of the full 31-POP core — roughly the workload the
optimizer runs hundreds to thousands of times per optimization.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core.state import AllocationState
from repro.topology.hurricane_electric import provisioned_core
from repro.traffic.generators import paper_traffic_matrix
from repro.trafficmodel.waterfill import TrafficModel


@pytest.fixture(scope="module")
def full_core_bundles():
    network = provisioned_core()
    matrix = paper_traffic_matrix(network, seed=0)
    state = AllocationState.initial(network, matrix)
    return network, state.bundles()


def test_traffic_model_evaluation_full_core(benchmark, full_core_bundles):
    network, bundles = full_core_bundles
    model = TrafficModel(network)

    result = benchmark(model.evaluate, bundles)

    print_header("Traffic model micro-benchmark (31-POP core, all-pairs shortest paths)")
    print(
        f"bundles: {len(bundles)}, links: {network.num_links}, "
        f"congested links: {len(result.congested_links)}, "
        f"network utility: {result.network_utility():.4f}"
    )
    assert len(result.outcomes) == len(bundles)


def test_shortest_path_allocation_build_full_core(benchmark):
    network = provisioned_core()
    matrix = paper_traffic_matrix(network, seed=0)

    state = benchmark(AllocationState.initial, network, matrix)

    print_header("Initial allocation build (31-POP core)")
    print(f"aggregates: {len(state)}, bundles: {len(state.bundles())}")
    assert state.total_flows() == matrix.total_flows
