"""CI perf budget — every committed BENCH record gated against a baseline.

Each benchmark in this package writes a ``BENCH_*.json`` record at the repo
root documenting its headline numbers.  Those records only help if CI
notices when they slide, so this module holds the registry of headline
metrics — one or two per record, with a per-metric tolerance — and compares
every committed record against the baselines stored in
``benchmarks/perf_baselines.json``:

* ``check`` (the CI entry point, also exposed as a pytest test) fails when
  any headline metric regresses past its tolerance, when a registered
  record or metric is missing, **and when a BENCH record exists that the
  registry does not cover** — a new benchmark must register its headline
  metric to land.
* ``refresh`` rewrites the baselines from the current records.  After an
  intentional perf change, regenerate the affected ``BENCH_*.json`` and
  run::

      PYTHONPATH=src python -m benchmarks.perf_budget refresh

  then commit both files; the diff documents the new expectation.

Tolerances are deliberately loose (10–15%): the gate exists to catch real
regressions — an accidental quadratic loop, a cache that stopped hitting —
not scheduler noise on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Repo root, where the benchmarks write their BENCH_*.json records.
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Stored baselines the committed records are compared against.
BASELINES_PATH = Path(__file__).resolve().parent / "perf_baselines.json"

#: One step of a metric path: a plain key, or a ``(key, value)`` selector
#: picking the first element of a list whose ``key`` equals ``value``.
PathStep = Union[str, Tuple[str, object]]


class Metric:
    """One gated headline metric of a BENCH record."""

    __slots__ = ("name", "path", "tolerance", "higher_is_better")

    def __init__(
        self,
        name: str,
        path: Sequence[PathStep],
        tolerance: float,
        higher_is_better: bool = True,
    ) -> None:
        self.name = name
        self.path = tuple(path)
        self.tolerance = tolerance
        self.higher_is_better = higher_is_better

    def extract(self, record: object) -> Optional[float]:
        """Resolve the metric path against *record*; None when absent."""
        value = record
        for step in self.path:
            if isinstance(step, tuple):
                key, wanted = step
                if not isinstance(value, list):
                    return None
                value = next(
                    (
                        element
                        for element in value
                        if isinstance(element, dict) and element.get(key) == wanted
                    ),
                    None,
                )
            elif isinstance(value, dict):
                value = value.get(step)
            else:
                return None
            if value is None:
                return None
        try:
            return float(value)
        except (TypeError, ValueError):
            return None


#: The budget: every committed BENCH_*.json must appear here, and every
#: listed metric must hold within its tolerance.  ``ms_per_evaluation``-style
#: speedups and saved fractions are all higher-is-better.
BUDGET: Dict[str, List[Metric]] = {
    "BENCH_running_time.json": [
        Metric(
            "compiled-engine speedup (ms/eval)",
            ("speedup", "ms_per_evaluation"),
            tolerance=0.15,
        ),
    ],
    "BENCH_dynamic_loop.json": [
        Metric(
            "warm-start evaluations saved",
            ("comparison", "evaluations_saved_fraction"),
            tolerance=0.10,
        ),
    ],
    "BENCH_failure_recovery.json": [
        Metric(
            "post-failure evaluations saved",
            ("comparison", "evaluations_saved_fraction"),
            tolerance=0.10,
        ),
    ],
    "BENCH_provisioning.json": [
        Metric(
            "warm-probe evaluations saved",
            ("comparison", "evaluations_saved_fraction"),
            tolerance=0.10,
        ),
    ],
    "BENCH_scale.json": [
        Metric(
            "batched scorer speedup @200 nodes",
            ("points", ("num_nodes", 200), "speedup"),
            tolerance=0.15,
        ),
    ],
    "BENCH_fleet.json": [
        Metric(
            "fleet cache-sharing speedup",
            ("speedup",),
            tolerance=0.15,
        ),
    ],
    "BENCH_service.json": [
        Metric(
            "debounced reoptimizations saved",
            ("comparison", "reoptimizations_saved_fraction"),
            tolerance=0.10,
        ),
    ],
}


def _load_json(path: Path) -> Optional[Dict]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except FileNotFoundError:
        return None  # reported as "missing or unreadable" by the caller
    except (OSError, json.JSONDecodeError) as error:
        print(f"warning: unreadable record {path}: {error}", file=sys.stderr)
        return None
    return loaded if isinstance(loaded, dict) else None


def current_metrics(root: Path = REPO_ROOT) -> Tuple[Dict[str, Dict[str, float]], List[str]]:
    """Extract every budgeted metric from the committed records.

    Returns ``(metrics, problems)`` where *metrics* maps record filename to
    ``{metric name: value}`` and *problems* lists records that are missing,
    unreadable, lacking a registered metric, or present but unregistered.
    """
    metrics: Dict[str, Dict[str, float]] = {}
    problems: List[str] = []
    for filename, budget in sorted(BUDGET.items()):
        record = _load_json(root / filename)
        if record is None:
            problems.append(f"{filename}: missing or unreadable")
            continue
        values: Dict[str, float] = {}
        for metric in budget:
            value = metric.extract(record)
            if value is None:
                problems.append(f"{filename}: metric {metric.name!r} not found")
            else:
                values[metric.name] = value
        metrics[filename] = values
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name not in BUDGET:
            problems.append(
                f"{path.name}: committed but not registered in the perf budget "
                "(add its headline metric to benchmarks/perf_budget.py)"
            )
    return metrics, problems


def check(root: Path = REPO_ROOT, baselines_path: Path = BASELINES_PATH) -> List[str]:
    """Compare current records against the stored baselines.

    Returns the list of failures (empty when the budget holds).  A metric
    fails when it is worse than ``baseline * (1 - tolerance)`` (or
    ``* (1 + tolerance)`` for lower-is-better metrics); improvements never
    fail, they just make the baseline conservative until refreshed.
    """
    failures: List[str] = []
    metrics, problems = current_metrics(root)
    failures.extend(problems)
    baselines = _load_json(baselines_path)
    if baselines is None:
        failures.append(
            f"{baselines_path}: missing or unreadable — run "
            "`python -m benchmarks.perf_budget refresh` and commit it"
        )
        return failures
    for filename, budget in sorted(BUDGET.items()):
        stored = baselines.get(filename, {})
        for metric in budget:
            value = metrics.get(filename, {}).get(metric.name)
            if value is None:
                continue  # already reported by current_metrics
            baseline = stored.get(metric.name)
            if baseline is None:
                failures.append(
                    f"{filename}: no baseline for {metric.name!r} — refresh "
                    "the baselines"
                )
                continue
            baseline = float(baseline)
            if metric.higher_is_better:
                floor = baseline * (1.0 - metric.tolerance)
                if value < floor:
                    failures.append(
                        f"{filename}: {metric.name} regressed to {value:.4f} "
                        f"(baseline {baseline:.4f}, floor {floor:.4f})"
                    )
            else:
                ceiling = baseline * (1.0 + metric.tolerance)
                if value > ceiling:
                    failures.append(
                        f"{filename}: {metric.name} regressed to {value:.4f} "
                        f"(baseline {baseline:.4f}, ceiling {ceiling:.4f})"
                    )
    return failures


def refresh(root: Path = REPO_ROOT, baselines_path: Path = BASELINES_PATH) -> Dict:
    """Rewrite the stored baselines from the current records."""
    metrics, problems = current_metrics(root)
    if problems:
        raise RuntimeError(
            "cannot refresh baselines from incomplete records:\n  "
            + "\n  ".join(problems)
        )
    baselines_path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    return metrics


# ------------------------------------------------------------------- pytest


def test_perf_budget():
    """CI bench-smoke gate: every committed BENCH record holds its budget."""
    failures = check()
    assert not failures, "perf budget violated:\n  " + "\n  ".join(failures)


# -------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate committed BENCH_*.json records against stored baselines"
    )
    parser.add_argument(
        "command",
        choices=("check", "refresh"),
        help="check records against baselines, or rewrite the baselines",
    )
    args = parser.parse_args(argv)

    if args.command == "refresh":
        try:
            metrics = refresh()
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        for filename, values in sorted(metrics.items()):
            for name, value in sorted(values.items()):
                print(f"{filename}: {name} = {value:.4f}")
        print(f"\nwrote {BASELINES_PATH}")
        return 0

    failures = check()
    metrics, _ = current_metrics()
    baselines = _load_json(BASELINES_PATH) or {}
    for filename, budget in sorted(BUDGET.items()):
        for metric in budget:
            value = metrics.get(filename, {}).get(metric.name)
            baseline = baselines.get(filename, {}).get(metric.name)
            rendered_value = f"{value:.4f}" if value is not None else "MISSING"
            rendered_base = f"{float(baseline):.4f}" if baseline is not None else "-"
            print(
                f"{filename}: {metric.name} = {rendered_value} "
                f"(baseline {rendered_base}, tolerance {metric.tolerance:.0%})"
            )
    if failures:
        print("\nperf budget violated:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf budget holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
