"""Prioritizing large flows (the paper's Figure 5 experiment).

Runs the underprovisioned core twice: once with every flow weighted equally
and once with large-transfer aggregates weighted up in the optimization
objective.  Prioritization lets the large flows reach their peak utility at a
small cost in overall utility — the trade-off an operator controls with a
single knob (:class:`repro.PriorityWeights`).

Run with:  python examples/prioritize_large_flows.py
"""

from repro import Fubar, PriorityWeights
from repro.experiments import underprovisioned_scenario
from repro.metrics import format_table
from repro.traffic import LARGE_TRANSFER


def main() -> None:
    scenario = underprovisioned_scenario(seed=1)
    controller = Fubar(scenario.network, config=scenario.fubar_config)

    default_plan = controller.optimize(scenario.traffic_matrix)
    prioritized_plan = controller.optimize_with_priority(
        scenario.traffic_matrix, PriorityWeights.prioritize(LARGE_TRANSFER, 16.0)
    )

    rows = []
    for name, plan in (("equal weights", default_plan), ("large flows x16", prioritized_plan)):
        model_result = plan.result.model_result
        rows.append(
            (
                name,
                f"{plan.network_utility:.4f}",
                f"{model_result.class_utility(LARGE_TRANSFER) or float('nan'):.4f}",
                f"{model_result.total_utilization():.4f}",
                len(model_result.congested_links),
            )
        )
    print(
        format_table(
            ("configuration", "overall_utility", "large_flow_utility", "utilization", "congested_links"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
