"""The paper's provisioned evaluation scenario on a core network.

Builds the (reduced, by default) Hurricane Electric-like core with 100 Mbps
links, generates the paper's synthetic all-pairs traffic matrix, runs FUBAR
and compares the outcome against shortest-path routing, ECMP, a classic
min-max-utilization LP and the isolated-aggregate upper bound.

Run with:  python examples/provisioned_core_network.py
Set FUBAR_FULL_SCALE=1 for the full 31-POP core (much slower in pure Python).
"""

from repro.baselines import (
    ecmp_routing,
    minmax_lp_routing,
    shortest_path_routing,
    upper_bound_utility,
)
from repro.core import Fubar
from repro.experiments import provisioned_scenario
from repro.metrics import format_comparison, format_utility_timeline


def main() -> None:
    scenario = provisioned_scenario(seed=1)
    print("scenario:", scenario.summary())

    plan = Fubar(scenario.network, config=scenario.fubar_config).optimize(
        scenario.traffic_matrix
    )
    print("\nFUBAR optimization timeline (Figure 3 panels, in text form):")
    print(format_utility_timeline(plan.result.recorder))

    results = {
        "shortest-path": shortest_path_routing(
            scenario.network, scenario.traffic_matrix
        ).network_utility,
        "ecmp": ecmp_routing(scenario.network, scenario.traffic_matrix).network_utility,
        "minmax-lp": minmax_lp_routing(
            scenario.network, scenario.traffic_matrix
        ).network_utility,
        "fubar": plan.network_utility,
        "upper-bound": upper_bound_utility(scenario.network, scenario.traffic_matrix),
    }
    print("\nScheme comparison (network utility):")
    print(format_comparison(results, reference="shortest-path"))

    print(
        f"\nFUBAR split {len(plan.routing.multipath_aggregates())} of "
        f"{len(plan.routing)} aggregates over multiple paths "
        f"(max {plan.routing.max_paths_per_aggregate()} paths per aggregate)."
    )


if __name__ == "__main__":
    main()
