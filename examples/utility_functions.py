"""Print the paper's utility functions (Figures 1 and 2) and a custom one.

Shows how the bandwidth and delay components compose, how operators define
custom classes, and how measurement-driven inference adjusts the bandwidth
inflection point (paper §2.2).

Run with:  python examples/utility_functions.py
"""

from repro import BandwidthComponent, DelayComponent, UtilityFunction
from repro.experiments import run_figure1_figure2
from repro.metrics import format_table
from repro.units import kbps, ms
from repro.utility import BandwidthSample, refine_utility_from_samples


def main() -> None:
    # The two classes the paper plots.
    curves = run_figure1_figure2(num_points=11)
    for name, data in curves.items():
        rows = list(
            zip(
                (f"{b:.0f}" for b in data["bandwidth_kbps"]),
                (f"{u:.2f}" for u in data["bandwidth_utility"]),
                (f"{d:.0f}" for d in data["delay_ms"]),
                (f"{u:.2f}" for u in data["delay_utility"]),
            )
        )
        print(f"\n[{name}] (Figure {'1' if name == 'real-time' else '2'})")
        print(format_table(("bw_kbps", "bw_utility", "delay_ms", "delay_utility"), rows))

    # A custom operator-defined class: video conferencing that needs 2 Mbps
    # and collapses above 150 ms.
    video = UtilityFunction(
        BandwidthComponent(kbps(2000)),
        DelayComponent(ms(150), tolerance_s=ms(50)),
        name="video-conferencing",
    )
    print(f"\ncustom class {video.name!r}: utility at (1 Mbps, 80 ms) = "
          f"{video(kbps(1000), ms(80)):.2f}")

    # Measurement-driven inflection inference: the aggregate never uses more
    # than ~600 kbps per flow on uncongested paths, so its demand is lowered.
    samples = [BandwidthSample(kbps(600)) for _ in range(8)]
    refined = refine_utility_from_samples(video, samples)
    print(f"after measurement, inferred per-flow demand: "
          f"{refined.demand_bps / 1e3:.0f} kbps (was {video.demand_bps / 1e3:.0f} kbps)")


if __name__ == "__main__":
    main()
