"""The offline/online controller loop the paper's conclusion sketches.

FUBAR is an *offline* controller: it periodically recomputes path splits
from measured traffic and hands them to an online SDN controller that
installs rules and keeps measuring.  This example runs two full cycles of
that loop on the simulated SDN substrate:

  measure -> optimize -> install rules -> carry traffic -> re-measure -> ...

Run with:  python examples/sdn_deployment_loop.py
"""

from repro.core import Fubar
from repro.experiments import provisioned_scenario
from repro.sdn import SdnController, deploy_plan, remeasure
from repro.traffic import measure_traffic_matrix


def main() -> None:
    scenario = provisioned_scenario(seed=2)
    network = scenario.network

    # Cycle 0: the ground-truth demand is only visible through noisy counters.
    measured = measure_traffic_matrix(scenario.traffic_matrix, seed=7)
    print(f"measured traffic matrix: {measured.num_aggregates} aggregates, "
          f"{measured.total_flows} flows")

    offline_controller = Fubar(network, config=scenario.fubar_config)
    online_controller = SdnController(network)

    plan = offline_controller.optimize(measured)
    report = deploy_plan(online_controller, plan)
    print(f"cycle 1: installed {report.num_rules_installed} rules, "
          f"utility {plan.network_utility:.4f}, overloaded links: {len(report.overloaded_links)}")

    # Cycle 1: the next optimization starts from what the switches measured,
    # warm-started from the deployed plan; the differential install reports
    # how few rules actually changed.
    remeasured = remeasure(online_controller)
    second_plan = offline_controller.optimize(remeasured, warm_start=plan)
    second_report = deploy_plan(online_controller, second_plan)
    churn = second_report.install
    print(f"cycle 2: {second_report.num_rules_installed} rules installed, "
          f"utility {second_plan.network_utility:.4f}, rule churn "
          f"+{churn.rules_added}/-{churn.rules_removed}/~{churn.rules_updated}")

    print("\nPer-switch rule counts after the second cycle:")
    for switch in online_controller.switches:
        print(f"  {switch.name}: {switch.num_rules} rules")


if __name__ == "__main__":
    main()
