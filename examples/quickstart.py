"""Quickstart: optimize one congested aggregate on a three-node network.

A single aggregate from A to B demands more than the direct A->B link can
carry.  Shortest-path routing leaves it congested; FUBAR splits it over the
direct link and the longer detour via C, eliminating congestion and raising
utility to 1.0.

Run with:  python examples/quickstart.py
"""

from repro import Fubar, TrafficMatrix, Aggregate, bulk_transfer_utility
from repro.baselines import shortest_path_routing
from repro.topology import triangle_topology
from repro.units import format_bandwidth, kbps, mbps


def main() -> None:
    # 1. A tiny topology: A--B directly (5 ms) and A--C--B as a detour (40 ms).
    network = triangle_topology(capacity_bps=mbps(100))

    # 2. One bulk aggregate: 600 flows wanting 300 kbps each (180 Mbps total,
    #    more than the 100 Mbps direct link).
    utility = bulk_transfer_utility(peak_bandwidth_bps=kbps(300))
    traffic = TrafficMatrix(
        [Aggregate("A", "B", "bulk", num_flows=600, utility=utility)]
    )
    print(f"offered demand: {format_bandwidth(traffic.total_demand_bps)}")

    # 3. What conventional shortest-path routing achieves.
    baseline = shortest_path_routing(network, traffic)
    print(f"shortest-path utility: {baseline.network_utility:.3f} "
          f"(congested links: {len(baseline.model_result.congested_links)})")

    # 4. What FUBAR achieves.
    plan = Fubar(network).optimize(traffic)
    print(f"FUBAR utility:         {plan.network_utility:.3f} "
          f"(congested links: {len(plan.result.model_result.congested_links)})")

    # 5. The deployable routing decision.
    route = plan.routing.route_of(("A", "B", "bulk"))
    for split in route.splits:
        print(f"  {' -> '.join(split.path)}: {split.weight:.0%} of flows "
              f"({split.num_flows} flows)")


if __name__ == "__main__":
    main()
