"""Trading delay for utilization (the paper's Figure 6 experiment).

Runs the underprovisioned case with the standard delay curves and again with
the small-flow delay parameter doubled, then prints the flow-delay CDFs and
the percentile shifts.  The paper's point: a single utility-function
parameter lets the operator trade path delay against utilization.

Run with:  python examples/delay_sensitivity.py
"""

from repro.experiments import run_figure6
from repro.metrics import format_cdf, format_table
from repro.units import to_ms


def main() -> None:
    result = run_figure6(seed=1)

    print("Flow delay CDF, standard delay curves (seconds):")
    print(format_cdf(result.original_cdf))
    print("\nFlow delay CDF, small-flow delay parameter doubled (seconds):")
    print(format_cdf(result.relaxed_cdf))

    summary = result.summary()
    rows = [(key, f"{value:.4f}") for key, value in summary.items()]
    print("\nSummary (utilities and percentile shifts):")
    print(format_table(("metric", "value"), rows))

    print(
        "\nRelaxing the delay restriction raised utility by "
        f"{summary['relaxed_utility'] - summary['original_utility']:+.4f} and moved the "
        f"median flow delay by {summary['median_shift_ms']:+.2f} ms."
    )


if __name__ == "__main__":
    main()
